"""Barrel shifter/rotator macros.

Shifters head the paper's list of datapath macros ("multiplexors (muxes),
shifters, adders, ...").  A barrel rotator is log2(N) ranks of 2:1
pass-gate muxes: rank ``s`` rotates by ``2^s`` when its select bit is high.
Rotation (not shift) keeps the macro constant-free; a datapath wraps it with
masking when a logical shift is needed.

Topologies:

* **pass-gate** — each rank is an encoded-select 2:1 pass mux per bit with a
  regenerating inverter (the classic structure; select inverter per rank).
* **tristate** — each rank steers through tri-state pairs; preferred when
  ranks are separated by long wires.

Labels are shared per rank (straight/rotated legs identical), the Section-4
regularity discipline.
"""

from __future__ import annotations

from typing import List

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net
from .base import MacroBuilder, MacroGenerator, MacroSpec


def _log2(n: int) -> int:
    bits = n.bit_length() - 1
    if 1 << bits != n:
        raise ValueError(f"barrel shifter width must be a power of two, got {n}")
    return bits


def shifter_golden_spec(n: int) -> FunctionalSpec:
    """``out_i = in_{(i + amount) mod n}`` with ``amount = Σ sh_s · 2^s`` —
    a right rotate by the binary shift amount, total over all inputs."""
    ranks = _log2(n)

    def amount(env: Env) -> int:
        return sum(1 << s for s in range(ranks) if env[f"sh{s}"])

    outputs = {
        f"out{i}": (lambda env, i=i: bool(env[f"in{(i + amount(env)) % n}"]))
        for i in range(n)
    }
    return FunctionalSpec(
        outputs=outputs,
        golden="shifter",
        notes=f"{n}-bit barrel rotate",
    )


class _ShifterGenerator(MacroGenerator):
    """Shared golden-spec hook for the barrel-rotator topologies."""

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return shifter_golden_spec(spec.width)


class PassgateBarrelRotator(_ShifterGenerator):
    """log2(N) ranks of encoded-select pass-gate muxes."""

    name = "shifter/passgate_barrel"
    macro_type = "shifter"
    description = "pass-gate barrel rotator (log2 N ranks of 2:1 muxes)"

    def applicable(self, spec: MacroSpec) -> bool:
        return (
            spec.macro_type == "shifter"
            and spec.width >= 4
            and (spec.width & (spec.width - 1)) == 0
        )

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        ranks = _log2(n)
        builder = MacroBuilder(f"shift{n}_passgate_barrel", tech)
        data: List[Net] = [builder.input(f"in{i}") for i in range(n)]
        selects = [builder.input(f"sh{s}") for s in range(ranks)]

        # Each rank's regenerating buffer inverts once, so the shifted data
        # arrives complemented after an odd number of ranks; a final
        # polarity-restoring inverter rank is needed then.
        fixup = ranks % 2 == 1
        current = data
        for s in range(ranks):
            amount = 1 << s
            pass_lbl = builder.size(f"N{s}p")
            builder.size(f"N{s}pi", ratio_of=(f"N{s}p", 0.5))
            inv_up = builder.size(f"P{s}b")
            inv_dn = builder.size(f"N{s}b")
            sel_up = builder.size(f"P{s}s")
            sel_dn = builder.size(f"N{s}s")
            sel = selects[s]
            sel_b = builder.wire(f"shb{s}")
            builder.inv(f"selinv{s}", sel, sel_b, sel_up, sel_dn)
            next_rank: List[Net] = []
            for i in range(n):
                merge = builder.wire(f"r{s}m{i}")
                is_last = s == ranks - 1
                if is_last and not fixup:
                    out = builder.output(f"out{i}", load=spec.output_load)
                else:
                    out = builder.wire(f"r{s}b{i}")
                builder.passgate(
                    f"r{s}straight{i}", current[i], sel_b, merge,
                    f"N{s}p", f"N{s}pi", mutex="encoded",
                )
                builder.passgate(
                    f"r{s}rot{i}", current[(i + amount) % n], sel, merge,
                    f"N{s}p", f"N{s}pi", mutex="encoded",
                )
                builder.inv(f"r{s}buf{i}", merge, out, inv_up, inv_dn)
                next_rank.append(out)
            current = next_rank
        if fixup:
            fix_up = builder.size("Pfix")
            fix_dn = builder.size("Nfix")
            for i in range(n):
                out = builder.output(f"out{i}", load=spec.output_load)
                builder.inv(f"fix{i}", current[i], out, fix_up, fix_dn)
        return builder.done()


class TristateBarrelRotator(_ShifterGenerator):
    """Tri-state ranks for long-wire shifter placements."""

    name = "shifter/tristate_barrel"
    macro_type = "shifter"
    description = "tri-state barrel rotator"

    def applicable(self, spec: MacroSpec) -> bool:
        return (
            spec.macro_type == "shifter"
            and spec.width >= 4
            and (spec.width & (spec.width - 1)) == 0
        )

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        ranks = _log2(n)
        builder = MacroBuilder(f"shift{n}_tristate_barrel", tech)
        data: List[Net] = [builder.input(f"in{i}") for i in range(n)]
        selects = [builder.input(f"sh{s}") for s in range(ranks)]

        current = data
        for s in range(ranks):
            amount = 1 << s
            up = builder.size(f"P{s}t")
            dn = builder.size(f"N{s}t")
            sel_up = builder.size(f"P{s}s")
            sel_dn = builder.size(f"N{s}s")
            buf_up = builder.size(f"P{s}b")
            buf_dn = builder.size(f"N{s}b")
            sel = selects[s]
            sel_b = builder.wire(f"shb{s}")
            builder.inv(f"selinv{s}", sel, sel_b, sel_up, sel_dn)
            next_rank: List[Net] = []
            for i in range(n):
                merge = builder.wire(f"r{s}m{i}", wire_cap=1.0)
                if s == ranks - 1:
                    out = builder.output(f"out{i}", load=spec.output_load)
                else:
                    out = builder.wire(f"r{s}b{i}")
                builder.tristate(
                    f"r{s}straight{i}", current[i], sel_b, merge, up, dn
                )
                builder.tristate(
                    f"r{s}rot{i}", current[(i + amount) % n], sel, merge, up, dn
                )
                builder.inv(f"r{s}buf{i}", merge, out, buf_up, buf_dn)
                next_rank.append(out)
            current = next_rank
        return builder.done()


ALL_SHIFTER_GENERATORS = (
    PassgateBarrelRotator(),
    TristateBarrelRotator(),
)
