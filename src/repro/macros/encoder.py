"""Encoder macros: 2^N-to-N binary encoders (the paper's "encoders" entry).

``out_b = OR of all one-hot inputs whose index has bit b set`` — assuming a
one-hot (strongly mutexed) input vector, the standard partner of the decoder
in datapath control.

Topologies:

* **static tree** — per output bit, an OR tree over its 2^(N-1) member
  inputs (NOR/NAND alternation, fast/slow pin annotations like the
  zero-detect trees);
* **domino** — per output bit, one wide domino OR node + high-skew driver;
  the flat, fast, clock-hungry choice.
"""

from __future__ import annotations

from typing import List

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net, PinClass
from ..netlist.stages import StageKind
from .base import MacroBuilder, MacroGenerator, MacroSpec
from .zero_detect import _chunk_sizes, _speeds


def encoder_golden_spec(n: int) -> FunctionalSpec:
    """``o_b = OR of inputs whose index has bit b set``.

    Total over the full input space — both topologies are plain OR
    structures, so the proof does not need the one-hot usage restriction
    (under which ``o`` reads back the hot index in binary)."""

    outputs = {}
    for b in range(n):
        members = [k for k in range(1 << n) if (k >> b) & 1]

        def bit(env: Env, members=tuple(members)) -> bool:
            return any(env[f"i{k}"] for k in members)

        outputs[f"o{b}"] = bit
    return FunctionalSpec(
        outputs=outputs,
        golden="encoder",
        notes=f"{1 << n}:{n} binary encode",
    )


class _EncoderGenerator(MacroGenerator):
    """Shared golden-spec hook for the encoder topologies."""

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return encoder_golden_spec(spec.width)


class StaticTreeEncoder(_EncoderGenerator):
    """Per-bit OR reduction trees."""

    name = "encoder/static_tree"
    macro_type = "encoder"
    description = "2^N:N binary encoder (static OR trees per output bit)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "encoder" and 2 <= spec.width <= 6

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"enc{1 << n}to{n}_static", tech)
        inputs = [builder.input(f"i{k}") for k in range(1 << n)]

        for b in range(n):
            members = [inputs[k] for k in range(1 << n) if (k >> b) & 1]
            out = builder.output(f"o{b}", load=spec.output_load)
            # OR tree: NOR first level (inverted), NAND next, alternating;
            # track the sense and fix it at the output buffer.
            current: List[Net] = members
            level = 0
            while len(current) > 1:
                kind = StageKind.NOR if level % 2 == 0 else StageKind.NAND
                pu = builder.size(f"PT{b}_{level}")
                pd = builder.size(f"NT{b}_{level}")
                merged: List[Net] = []
                start = 0
                for gi, size in enumerate(_chunk_sizes(len(current))):
                    chunk = current[start:start + size]
                    start += size
                    gate_out = builder.wire(f"b{b}l{level}g{gi}")
                    builder.gate(
                        f"b{b}gate{level}_{gi}", kind, chunk, gate_out,
                        pu, pd, speeds=_speeds(len(chunk)),
                    )
                    merged.append(gate_out)
                current = merged
                level += 1
            pu = builder.size(f"PO{b}")
            pd = builder.size(f"NO{b}")
            if level % 2 == 1:
                # Root is active-low NOR-of-members == NOT(OR): one inverter
                # restores OR.
                builder.inv(f"obuf{b}", current[0], out, pu, pd)
            else:
                mid = builder.wire(f"ob{b}")
                builder.inv(f"obuf{b}a", current[0], mid, pu, pd)
                pu2 = builder.size(f"PO{b}x")
                pd2 = builder.size(f"NO{b}x")
                builder.inv(f"obuf{b}b", mid, out, pu2, pd2)
        return builder.done()


class DominoEncoder(_EncoderGenerator):
    """Per-bit wide domino OR nodes."""

    name = "encoder/domino"
    macro_type = "encoder"
    description = "2^N:N binary encoder (domino OR node per output bit)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "encoder" and 2 <= spec.width <= 6

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"enc{1 << n}to{n}_domino", tech)
        inputs = [builder.input(f"i{k}") for k in range(1 << n)]
        clk = builder.clock()
        builder.size("P1"), builder.size("N1"), builder.size("E1")
        builder.size("P2"), builder.size("N2")
        for b in range(n):
            members = [inputs[k] for k in range(1 << n) if (k >> b) & 1]
            node = builder.wire(f"dyn{b}", wire_cap=0.4 * len(members))
            out = builder.output(f"o{b}", load=spec.output_load)
            builder.domino(
                f"dom{b}",
                [[(net, PinClass.DATA)] for net in members],
                clk,
                node,
                "P1",
                "N1",
                evaluate="E1",
            )
            builder.inv(f"drv{b}", node, out, "P2", "N2", skew="high")
        return builder.done()


ALL_ENCODER_GENERATORS = (
    StaticTreeEncoder(),
    DominoEncoder(),
)
