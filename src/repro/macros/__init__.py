"""The SMART design database: macro specs, topology generators, registry."""

from .adder import ALL_ADDER_GENERATORS, DualRailDominoCLA, StaticRippleAdder
from .base import MacroBuilder, MacroDatabase, MacroGenerator, MacroSpec
from .comparator import (
    ALL_COMPARATOR_GENERATORS,
    TwoPhaseDominoComparator,
    Xorsum1Comparator,
    Xorsum4Comparator,
)
from .decoder import (
    ALL_DECODER_GENERATORS,
    DominoDecoder,
    FlatStaticDecoder,
    PredecodedDecoder,
)
from .encoder import ALL_ENCODER_GENERATORS, DominoEncoder, StaticTreeEncoder
from .incrementor import (
    ALL_INCREMENTOR_GENERATORS,
    PrefixDecrementor,
    PrefixIncrementor,
    RippleDecrementor,
    RippleIncrementor,
)
from .mux import (
    ALL_MUX_GENERATORS,
    EncodedSelectMux2,
    PartitionedDominoMux,
    StrongMutexPassgateMux,
    TristateMux,
    UnsplitDominoMux,
    WeakMutexPassgateMux,
)
from .register_file import (
    ALL_REGISTER_FILE_GENERATORS,
    DominoBitlineReadPort,
    TristateBitlineReadPort,
)
from .registry import default_database
from .shifter import (
    ALL_SHIFTER_GENERATORS,
    PassgateBarrelRotator,
    TristateBarrelRotator,
)
from .zero_detect import (
    ALL_ZERO_DETECT_GENERATORS,
    DominoZeroDetect,
    SplitDominoZeroDetect,
    StaticTreeZeroDetect,
)

__all__ = [
    "MacroSpec",
    "MacroGenerator",
    "MacroDatabase",
    "MacroBuilder",
    "default_database",
    "StrongMutexPassgateMux",
    "WeakMutexPassgateMux",
    "EncodedSelectMux2",
    "TristateMux",
    "UnsplitDominoMux",
    "PartitionedDominoMux",
    "RippleIncrementor",
    "PrefixIncrementor",
    "RippleDecrementor",
    "PrefixDecrementor",
    "StaticTreeZeroDetect",
    "DominoZeroDetect",
    "SplitDominoZeroDetect",
    "FlatStaticDecoder",
    "PredecodedDecoder",
    "DominoDecoder",
    "DualRailDominoCLA",
    "StaticRippleAdder",
    "TwoPhaseDominoComparator",
    "Xorsum1Comparator",
    "Xorsum4Comparator",
    "ALL_MUX_GENERATORS",
    "ALL_INCREMENTOR_GENERATORS",
    "ALL_ZERO_DETECT_GENERATORS",
    "ALL_DECODER_GENERATORS",
    "ALL_ADDER_GENERATORS",
    "ALL_COMPARATOR_GENERATORS",
    "ALL_SHIFTER_GENERATORS",
    "ALL_REGISTER_FILE_GENERATORS",
    "PassgateBarrelRotator",
    "TristateBarrelRotator",
    "DominoBitlineReadPort",
    "TristateBitlineReadPort",
    "ALL_ENCODER_GENERATORS",
    "StaticTreeEncoder",
    "DominoEncoder",
]
