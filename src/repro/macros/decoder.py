"""Decoder macros (Figure 5(c) corpus): n-to-2^n one-hot decoders.

Three topologies:

* **flat static** — complement rank, then one NAND-n + inverter per output.
* **predecoded** — inputs split into groups of 2-3 bits, each predecoded to
  a one-hot bundle; outputs combine one line per bundle through a small NAND.
  The standard choice at 6:64 and 7:128.
* **domino** — one D1 domino AND node per output plus a high-skew driver.
  Fast, but every output carries precharge clock load.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net, PinClass
from .base import MacroBuilder, MacroGenerator, MacroSpec


def decoder_golden_spec(n: int) -> FunctionalSpec:
    """``o_code = (a == code)`` — total over the full input space."""

    def address(env: Env) -> int:
        return sum(1 << bit for bit in range(n) if env[f"a{bit}"])

    outputs = {
        f"o{code}": (lambda env, code=code: address(env) == code)
        for code in range(1 << n)
    }
    return FunctionalSpec(
        outputs=outputs,
        golden="decoder",
        notes=f"{n}:{1 << n} one-hot decode",
    )


class _DecoderGenerator(MacroGenerator):
    """Shared golden-spec hook for the decoder topologies."""

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return decoder_golden_spec(spec.width)


def _complement_rank(
    builder: MacroBuilder, bits: Sequence[Net]
) -> List[Tuple[Net, Net]]:
    """(true, complement) rails per input, complement through a shared-label
    inverter rank."""
    pu = builder.size("PINV")
    pd = builder.size("NINV")
    rails = []
    for i, bit in enumerate(bits):
        comp = builder.wire(f"ab{i}")
        builder.inv(f"cmp{i}", bit, comp, pu, pd)
        rails.append((bit, comp))
    return rails


def _minterm_nets(rails: Sequence[Tuple[Net, Net]], code: int) -> List[Net]:
    """The input rail (true/complement) each bit contributes to minterm
    ``code``."""
    nets = []
    for bit, (true_rail, comp_rail) in enumerate(rails):
        nets.append(true_rail if (code >> bit) & 1 else comp_rail)
    return nets


class FlatStaticDecoder(_DecoderGenerator):
    """One wide NAND per output."""

    name = "decoder/flat_static"
    macro_type = "decoder"
    description = "flat static decoder (NAND-n + INV per output)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "decoder" and 2 <= spec.width <= 7

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"dec{n}to{1 << n}_flat", tech)
        bits = [builder.input(f"a{i}") for i in range(n)]
        rails = _complement_rank(builder, bits)
        pu_nand = builder.size("PNAND")
        pd_nand = builder.size("NNAND")
        pu_out = builder.size("POUT")
        pd_out = builder.size("NOUT")
        for code in range(1 << n):
            nand_out = builder.wire(f"m{code}b")
            out = builder.output(f"o{code}", load=spec.output_load)
            builder.nand(
                f"mnand{code}", _minterm_nets(rails, code), nand_out, pu_nand, pd_nand
            )
            builder.inv(f"mout{code}", nand_out, out, pu_out, pd_out)
        return builder.done()


class PredecodedDecoder(_DecoderGenerator):
    """Two-level decode through one-hot predecode bundles."""

    name = "decoder/predecoded"
    macro_type = "decoder"
    description = "predecoded decoder (group one-hot bundles + NAND combine)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "decoder" and spec.width >= 4

    @staticmethod
    def _groups(n: int) -> List[int]:
        """Split n bits into predecode groups of 2-3."""
        groups = []
        remaining = n
        while remaining > 0:
            if remaining in (2, 4):
                groups.append(2)
                remaining -= 2
            else:
                groups.append(min(3, remaining))
                remaining -= min(3, remaining)
        return groups

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"dec{n}to{1 << n}_predec", tech)
        bits = [builder.input(f"a{i}") for i in range(n)]
        rails = _complement_rank(builder, bits)

        pu_pre = builder.size("PPRE")
        pd_pre = builder.size("NPRE")
        pu_buf = builder.size("PPBUF")
        pd_buf = builder.size("NPBUF")

        bundles: List[List[Net]] = []
        start = 0
        for g_index, g_size in enumerate(self._groups(n)):
            group_rails = rails[start:start + g_size]
            lines: List[Net] = []
            for code in range(1 << g_size):
                nand_out = builder.wire(f"p{g_index}_{code}b")
                line = builder.wire(f"p{g_index}_{code}")
                builder.nand(
                    f"pnand{g_index}_{code}",
                    _minterm_nets(group_rails, code),
                    nand_out,
                    pu_pre,
                    pd_pre,
                )
                builder.inv(f"pbuf{g_index}_{code}", nand_out, line, pu_buf, pd_buf)
                lines.append(line)
            bundles.append(lines)
            start += g_size

        pu_nand = builder.size("PNAND")
        pd_nand = builder.size("NNAND")
        pu_out = builder.size("POUT")
        pd_out = builder.size("NOUT")
        group_sizes = self._groups(n)
        for code in range(1 << n):
            chosen: List[Net] = []
            shift = 0
            for bundle, g_size in zip(bundles, group_sizes):
                local = (code >> shift) & ((1 << g_size) - 1)
                chosen.append(bundle[local])
                shift += g_size
            nand_out = builder.wire(f"m{code}b")
            out = builder.output(f"o{code}", load=spec.output_load)
            builder.nand(f"mnand{code}", chosen, nand_out, pu_nand, pd_nand)
            builder.inv(f"mout{code}", nand_out, out, pu_out, pd_out)
        return builder.done()


class DominoDecoder(_DecoderGenerator):
    """One domino AND node per output."""

    name = "decoder/domino"
    macro_type = "decoder"
    description = "domino decoder (D1 AND node + high-skew driver per output)"

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == "decoder" and 2 <= spec.width <= 7

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        n = spec.width
        builder = MacroBuilder(f"dec{n}to{1 << n}_domino", tech)
        bits = [builder.input(f"a{i}") for i in range(n)]
        clk = builder.clock()
        rails = _complement_rank(builder, bits)
        builder.size("P1"), builder.size("N1"), builder.size("N2")
        builder.size("P3"), builder.size("N3")
        for code in range(1 << n):
            node = builder.wire(f"dyn{code}")
            out = builder.output(f"o{code}", load=spec.output_load)
            leg = [(net, PinClass.DATA) for net in _minterm_nets(rails, code)]
            builder.domino(
                f"dom{code}", [leg], clk, node, "P1", "N1", evaluate="N2"
            )
            builder.inv(f"drv{code}", node, out, "P3", "N3", skew="high")
        return builder.done()


ALL_DECODER_GENERATORS = (
    FlatStaticDecoder(),
    PredecodedDecoder(),
    DominoDecoder(),
)
