"""Assembly of the default SMART macro database.

``default_database()`` registers every topology shipped with the
reproduction — the Figure-2 mux family plus the Section-6 experiment corpus.
Designers extend it exactly the way Section 4 describes: build a
:class:`~repro.macros.base.MacroGenerator` for the new implementation and
``register`` it.
"""

from __future__ import annotations

from .adder import ALL_ADDER_GENERATORS
from .base import MacroDatabase
from .comparator import ALL_COMPARATOR_GENERATORS
from .decoder import ALL_DECODER_GENERATORS
from .encoder import ALL_ENCODER_GENERATORS
from .incrementor import ALL_INCREMENTOR_GENERATORS
from .mux import ALL_MUX_GENERATORS
from .register_file import ALL_REGISTER_FILE_GENERATORS
from .shifter import ALL_SHIFTER_GENERATORS
from .zero_detect import ALL_ZERO_DETECT_GENERATORS

_ALL = (
    ALL_MUX_GENERATORS
    + ALL_INCREMENTOR_GENERATORS
    + ALL_ZERO_DETECT_GENERATORS
    + ALL_DECODER_GENERATORS
    + ALL_ADDER_GENERATORS
    + ALL_COMPARATOR_GENERATORS
    + ALL_SHIFTER_GENERATORS
    + ALL_REGISTER_FILE_GENERATORS
    + ALL_ENCODER_GENERATORS
)


def default_database() -> MacroDatabase:
    """A fresh database with every built-in topology registered."""
    database = MacroDatabase()
    for generator in _ALL:
        database.register(generator)
    return database
