"""Incrementor / decrementor macros (Figure 5(a) corpus).

Two topologies per family:

* **ripple** — carry chain: ``c0 = cin``, ``c_{i+1} = a_i AND c_i`` (NAND +
  inverter per bit), ``sum_i = a_i XOR c_i``.  Minimal area, linear depth.
* **prefix** — logarithmic AND-prefix tree (carry into bit i is the AND of
  all lower bits), NAND2/INV pairs per tree node.  The high-performance
  choice at wide bit-widths.

A decrementor is the same machine on complemented inputs (borrow ripples
where the bit is 0), realized by an input inverter rank.

Labeling follows Section 4's regularity discussion: by default bits share
labels in groups (``label_group`` bits per group, default 8), giving layout
regularity and a small GP; ``label_group=1`` gives the per-bit "least total
width" labeling, and very large groups give fully shared labels.  The
labeling-granularity ablation benchmark sweeps this knob.
"""

from __future__ import annotations

from typing import List

from ..models.technology import Technology
from ..netlist.circuit import Circuit
from ..netlist.funcspec import Env, FunctionalSpec
from ..netlist.nets import Net
from .base import MacroBuilder, MacroGenerator, MacroSpec


def increment_golden_spec(width: int, invert_inputs: bool) -> FunctionalSpec:
    """``{sum, cout} = a + cin`` — or, for the decrementor machine, the same
    ripple over the complemented input rank (borrow propagates where the bit
    is 0; the outputs are literally that machine's outputs, Section 4's
    "same schematic on inverted rails")."""

    def total(env: Env) -> int:
        value = 0
        for i in range(width):
            if bool(env[f"a{i}"]) != invert_inputs:
                value |= 1 << i
        return value + int(bool(env["cin"]))

    outputs = {
        f"sum{i}": (lambda env, i=i: bool((total(env) >> i) & 1))
        for i in range(width)
    }
    outputs["cout"] = lambda env: bool((total(env) >> width) & 1)
    return FunctionalSpec(
        outputs=outputs,
        golden="decrementor" if invert_inputs else "incrementor",
        notes=f"{width}-bit {'decrement' if invert_inputs else 'increment'}",
    )


def _group_label(builder: MacroBuilder, base: str, bit: int, group: int) -> str:
    """Declare-and-return the shared label for ``bit`` in granularity
    ``group``."""
    return builder.size(f"{base}g{bit // group}")


def _input_rank(
    builder: MacroBuilder, spec: MacroSpec, invert: bool, group: int
) -> List[Net]:
    """Primary inputs, optionally complemented through a driver rank (the
    decrementor's borrow logic runs on complemented bits)."""
    width = spec.width
    raw = [builder.input(f"a{i}") for i in range(width)]
    if not invert:
        return raw
    nets = []
    for i, net in enumerate(raw):
        pu = _group_label(builder, "PIN", i, group)
        pd = _group_label(builder, "NIN", i, group)
        inverted = builder.wire(f"ab{i}")
        builder.inv(f"inpinv{i}", net, inverted, pu, pd)
        nets.append(inverted)
    return nets


class RippleIncrementor(MacroGenerator):
    """Linear carry chain incrementor."""

    name = "incrementor/ripple"
    macro_type = "incrementor"
    description = "ripple-carry incrementor (NAND+INV chain, XOR sums)"

    #: Set by the decrementor subclass.
    invert_inputs = False

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == self.macro_type and spec.width >= 2

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return increment_golden_spec(spec.width, self.invert_inputs)

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        width = spec.width
        group = int(spec.param("label_group", 8))
        builder = MacroBuilder(f"{self.macro_type}{width}_ripple", tech)
        bits = _input_rank(builder, spec, self.invert_inputs, group)
        carry = builder.input("cin")
        for i in range(width):
            px = _group_label(builder, "PX", i, group)
            nx = _group_label(builder, "NX", i, group)
            out = builder.output(f"sum{i}", load=spec.output_load)
            builder.xor(f"sumx{i}", bits[i], carry, out, px, nx)
            if i < width - 1:
                pn = _group_label(builder, "PN", i, group)
                nn = _group_label(builder, "NN", i, group)
                pi = _group_label(builder, "PI", i, group)
                ni = _group_label(builder, "NI", i, group)
                carry_b = builder.wire(f"cb{i + 1}")
                next_carry = builder.wire(f"c{i + 1}")
                builder.nand(f"cnand{i}", [bits[i], carry], carry_b, pn, nn)
                builder.inv(f"cinv{i}", carry_b, next_carry, pi, ni)
                carry = next_carry
        cout = builder.output("cout", load=spec.output_load)
        pn = _group_label(builder, "PN", width - 1, group)
        nn = _group_label(builder, "NN", width - 1, group)
        pi = _group_label(builder, "PI", width - 1, group)
        ni = _group_label(builder, "NI", width - 1, group)
        cout_b = builder.wire("coutb")
        builder.nand("coutnand", [bits[width - 1], carry], cout_b, pn, nn)
        builder.inv("coutinv", cout_b, cout, pi, ni)
        return builder.done()


class RippleDecrementor(RippleIncrementor):
    name = "decrementor/ripple"
    macro_type = "decrementor"
    description = "ripple-borrow decrementor (complemented-input ripple chain)"
    invert_inputs = True


class PrefixIncrementor(MacroGenerator):
    """Logarithmic AND-prefix (carry-lookahead) incrementor."""

    name = "incrementor/prefix"
    macro_type = "incrementor"
    description = "prefix-tree (carry-lookahead) incrementor"

    invert_inputs = False

    def applicable(self, spec: MacroSpec) -> bool:
        return spec.macro_type == self.macro_type and spec.width >= 4

    def functional_spec(self, spec: MacroSpec) -> FunctionalSpec:
        return increment_golden_spec(spec.width, self.invert_inputs)

    def build(self, spec: MacroSpec, tech: Technology) -> Circuit:
        width = spec.width
        group = int(spec.param("label_group", 8))
        builder = MacroBuilder(f"{self.macro_type}{width}_prefix", tech)
        bits = _input_rank(builder, spec, self.invert_inputs, group)
        cin = builder.input("cin")

        # prefix[i] = AND(cin, a_0 .. a_{i-1}) = carry into bit i.
        # Sklansky-style tree of AND2 (NAND2 + INV) nodes, one label pair per
        # tree level so every level stays regular.
        prefix: List[Net] = [cin] + list(bits)  # prefix over inputs incl. cin
        level = 0
        stride = 1
        values = list(prefix)
        while stride < len(values):
            pu_n = builder.size(f"PTn{level}")
            pd_n = builder.size(f"NTn{level}")
            pu_i = builder.size(f"PTi{level}")
            pd_i = builder.size(f"NTi{level}")
            merged: List[Net] = []
            for i, net in enumerate(values):
                if i < stride:
                    merged.append(net)
                    continue
                nand_out = builder.wire(f"t{level}_{i}b")
                and_out = builder.wire(f"t{level}_{i}")
                builder.nand(
                    f"tnand{level}_{i}", [net, values[i - stride]], nand_out, pu_n, pd_n
                )
                builder.inv(f"tinv{level}_{i}", nand_out, and_out, pu_i, pd_i)
                merged.append(and_out)
            values = merged
            stride *= 2
            level += 1

        # values[i] now equals AND(prefix[0..i]); carry into bit i is
        # values[i] (the AND through cin and bits 0..i-1).
        for i in range(width):
            px = _group_label(builder, "PX", i, group)
            nx = _group_label(builder, "NX", i, group)
            out = builder.output(f"sum{i}", load=spec.output_load)
            builder.xor(f"sumx{i}", bits[i], values[i], out, px, nx)
        cout = builder.output("cout", load=spec.output_load)
        pu = builder.size("PCO")
        pd = builder.size("NCO")
        builder.inv("coutbuf", values[width], builder.wire("coutb"), pu, pd)
        pu2 = builder.size("PCO2")
        pd2 = builder.size("NCO2")
        builder.inv("coutbuf2", builder.circuit.net("coutb"), cout, pu2, pd2)
        return builder.done()


class PrefixDecrementor(PrefixIncrementor):
    name = "decrementor/prefix"
    macro_type = "decrementor"
    description = "prefix-tree decrementor (complemented-input prefix chain)"
    invert_inputs = True


ALL_INCREMENTOR_GENERATORS = (
    RippleIncrementor(),
    PrefixIncrementor(),
    RippleDecrementor(),
    PrefixDecrementor(),
)
