"""Section 5.2's path-space reduction claim.

Paper: "on a 64 bit dynamic adder, an exhaustive timing analysis revealed
over 32,000 paths.  However, the above techniques reduced the problem size to
120 paths, i.e., a factor of over 250 reduction in the problem size."

Plus the pruning-pass ablation DESIGN.md calls out: each of the three
techniques contributes, measured on an enumerable mid-size circuit.
"""

import pytest

from conftest import render_table
from repro.macros import MacroSpec
from repro.sizing import PathExtractor, prune_paths


@pytest.fixture(scope="module")
def adder64(database, tech):
    return database.generate(
        "adder/dual_rail_domino_cla", MacroSpec("adder", 64, output_load=20.0), tech
    )


@pytest.fixture(scope="module")
def adder64_counts(adder64):
    extractor = PathExtractor(adder64)
    raw = extractor.count()
    representative = extractor.extract_representative()
    return raw, len(representative)


def test_section52_table(adder64_counts):
    raw, reduced = adder64_counts
    render_table(
        "Section 5.2: 64-bit dynamic adder path-space reduction",
        ("quantity", "measured", "paper"),
        [
            ("raw topological paths", f"{raw:,}", ">32,000"),
            ("after reduction", f"{reduced}", "120"),
            ("reduction factor", f"{raw / reduced:,.0f}x", ">250x"),
        ],
    )


def test_raw_paths_exceed_32000(adder64_counts):
    raw, _ = adder64_counts
    assert raw > 32_000


def test_reduced_to_low_hundreds(adder64_counts):
    _, reduced = adder64_counts
    assert reduced < 300


def test_reduction_factor_over_250(adder64_counts):
    raw, reduced = adder64_counts
    assert raw / reduced > 250.0


class TestAblation:
    """Per-pass contribution on an enumerable circuit (16-bit CLA)."""

    @pytest.fixture(scope="class")
    def corpus(self, database, tech):
        circuit = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 16), tech
        )
        paths = PathExtractor(circuit).extract()
        return circuit, paths

    @pytest.fixture(scope="class")
    def ablation(self, corpus):
        circuit, paths = corpus
        combos = {
            "none": dict(use_precedence=False, use_dominance=False, use_regularity=False),
            "precedence only": dict(use_precedence=True, use_dominance=False, use_regularity=False),
            "dominance only": dict(use_precedence=False, use_dominance=True, use_regularity=False),
            "regularity only": dict(use_precedence=False, use_dominance=False, use_regularity=True),
            "all three": dict(use_precedence=True, use_dominance=True, use_regularity=True),
        }
        return {
            label: prune_paths(circuit, paths, **flags).stats.final
            for label, flags in combos.items()
        }

    def test_ablation_table(self, ablation):
        rows = [(label, count) for label, count in ablation.items()]
        render_table(
            "Section 5.2 ablation: surviving paths per pruning combination "
            "(16-bit CLA)",
            ("passes enabled", "paths"),
            rows,
        )

    def test_each_pass_reduces(self, ablation):
        baseline = ablation["none"]
        for label in ("dominance only", "regularity only"):
            assert ablation[label] < baseline, label

    def test_combination_best(self, ablation):
        assert ablation["all three"] <= min(
            ablation["precedence only"],
            ablation["dominance only"],
            ablation["regularity only"],
        )

    def test_regularity_is_the_big_lever(self, ablation):
        """Datapath regularity carries most of the reduction (the paper's
        emphasis)."""
        assert ablation["regularity only"] < ablation["none"] / 10


class TestPrecedenceAblation:
    """Pin precedence needs annotated wide gates — measured on the 63-bit
    static zero-detect tree, where every NOR4/NAND4 carries the fast/slow
    partition."""

    @pytest.fixture(scope="class")
    def zdet_counts(self, database, tech):
        circuit = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", 63), tech
        )
        paths = PathExtractor(circuit).extract()
        without = prune_paths(
            circuit, paths,
            use_precedence=False, use_dominance=False, use_regularity=False,
        ).stats.final
        with_precedence = prune_paths(
            circuit, paths,
            use_precedence=True, use_dominance=False, use_regularity=False,
        ).stats.final
        return without, with_precedence

    def test_precedence_prunes_fast_paths(self, zdet_counts):
        without, with_precedence = zdet_counts
        render_table(
            "Section 5.2: pin-precedence pruning on 63-bit zero detect",
            ("pruning", "paths"),
            [("off", without), ("pin precedence", with_precedence)],
        )
        # Only the slow-pin path through each gate survives: the tree's
        # branching collapses dramatically.
        assert with_precedence < without / 5


def test_bench_counting(benchmark, adder64):
    extractor = PathExtractor(adder64)

    def kernel():
        return extractor.count(), len(extractor.extract_representative())

    raw, reduced = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert raw > 32_000 and reduced < 300


class TestPruningCertificate:
    """The prune is sound, not just small: a ``certify=True`` run emits a
    per-path drop witness, and the linter's independent verifier confirms
    every one of the >32,000 extracted paths is either surviving or validly
    dominated/merged — the ISSUE-2 coverage guarantee on the Section-5.2
    flagship."""

    @pytest.fixture(scope="class")
    def certified(self, adder64):
        raw = PathExtractor(adder64).extract()
        result = prune_paths(adder64, raw, certify=True)
        return raw, result.certificate

    def test_certificate_verifies(self, adder64, certified):
        from repro.lint.coverage import verify_pruning

        raw, certificate = certified
        report = verify_pruning(adder64, raw, certificate)
        render_table(
            "Section 5.2: pruning-certificate verification (64-bit adder)",
            ("quantity", "measured"),
            [
                ("extracted paths", f"{len(raw):,}"),
                ("surviving constraints", len(certificate.surviving)),
                ("drop witnesses", f"{len(certificate.dropped):,}"),
                ("uncovered paths", len(report.errors)),
            ],
        )
        assert len(raw) > 32_000
        assert len(certificate.surviving) < 300
        assert report.ok, [d.format() for d in report.errors[:5]]

    def test_every_path_accounted(self, certified):
        raw, certificate = certified
        surviving = set(certificate.surviving)
        assert surviving.isdisjoint(certificate.dropped)
        assert len(surviving) + len(certificate.dropped) == len(set(raw))
