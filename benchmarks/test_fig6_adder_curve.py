"""Figure 6: area-delay trade-off curve of the 64-bit dual-rail domino CLA.

The paper's curve (normalized to the loosest-delay point): tightening the
delay from 1.27x to ~0.96x of the reference costs area 1.00 -> 1.27, with the
labeled points 1, 1.074, 1.1716, 1.2707 — a convex, monotone trade-off.  We
regenerate the curve by re-running the SMART sizer across a delay sweep and
check monotonicity, convexity, and the overall area ratio.
"""

import pytest

from conftest import norm, render_table
from repro import DesignConstraints, MacroSpec, SmartAdvisor, area_delay_curve
from repro.sizing.engine import nominal_delay

#: The paper's Figure-6 x-axis spans normalized delay 0.96..1.27; we sweep
#: the same relative range around the anchor point.
SCALES = (0.96, 1.0, 1.074, 1.17, 1.27)
#: Anchor: fraction of nominal-size delay where this topology has real
#: tension (its sizing floor sits near 0.31x nominal).
ANCHOR_FRACTION = 0.40


@pytest.fixture(scope="module")
def advisor(database, library):
    return SmartAdvisor(database=database, library=library)


@pytest.fixture(scope="module")
def curve(advisor, database, library):
    spec = MacroSpec("adder", 64, output_load=20.0)
    circuit = database.generate("adder/dual_rail_domino_cla", spec, advisor.tech)
    base = DesignConstraints(
        delay=ANCHOR_FRACTION * nominal_delay(circuit, library)
    )
    return area_delay_curve(
        advisor, "adder/dual_rail_domino_cla", spec, base, scales=SCALES
    )


def test_figure6_table(curve):
    normalized = curve.normalized(reference_scale=max(SCALES))
    rows = [
        (f"{p.delay_scale:.2f}", norm(p.spec_delay), norm(p.area),
         "yes" if p.converged else "NO")
        for p in sorted(normalized.points, key=lambda p: -p.spec_delay)
    ]
    render_table(
        "Figure 6: 64-bit domino adder area-delay curve "
        "(normalized to loosest point)",
        ("scale", "norm delay", "norm area", "converged"),
        rows,
    )


def test_all_points_converge(curve):
    assert all(p.converged for p in curve.points)


def test_monotone_tradeoff(curve):
    """Area never increases as delay loosens."""
    assert curve.is_monotone()


def test_area_span_matches_paper_band(curve):
    """Paper: ~27% more area buys the full sweep (1.00 -> 1.2707).  Our
    synthetic technology's curve is steeper near the floor; require a clear
    but bounded trade-off across the same relative delay range."""
    points = sorted(curve.points, key=lambda p: p.spec_delay)
    ratio = points[0].area / points[-1].area
    assert 1.1 < ratio < 8.0, ratio


def test_convex_shape(curve):
    """Cost per ps saved grows as the budget tightens (curve bends upward)."""
    points = sorted(curve.points, key=lambda p: p.spec_delay)
    # slope between consecutive points: d(area)/d(delay) is negative and its
    # magnitude increases toward tight budgets.
    slopes = []
    for a, b in zip(points, points[1:]):
        slopes.append((a.area - b.area) / (b.spec_delay - a.spec_delay))
    assert slopes[0] >= slopes[-1] * 0.8  # tight-end slope at least comparable


def test_bench_adder_sizing(benchmark, advisor, database, library):
    spec = MacroSpec("adder", 64, output_load=20.0)
    circuit = database.generate("adder/dual_rail_domino_cla", spec, advisor.tech)
    constraints = DesignConstraints(delay=0.7 * nominal_delay(circuit, library))

    def kernel():
        return advisor.size_topology("adder/dual_rail_domino_cla", spec, constraints)

    _, result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.converged
