"""Slice-collapsed sizing vs the full GP on the 64-bit per-bit adder.

The ROADMAP's "solve one slice, replicate N", made sound by the OPT703
replication certificate: the 64-bit ripple adder with per-bit labels is a
512-variable GP; the WL collapse ties it down to one representative per
equivalence class and proves the replicated point against the original
circuit.  This module measures the headline claim — GP wall-clock becomes
O(1) in the datapath width — and the price of the proof (the
certificate-check wall time), and stamps both into ``BENCH_PR10.json``
via the ``bench_extra`` fixture.

The full 512-variable solve takes a few minutes; it runs once in the
module fixture.  The tracked CI kernel (``test_bench_collapsed_sizing``)
times a 16-bit per-bit collapse end-to-end instead, so the perf gate
stays fast.
"""

import time

import pytest

from conftest import norm, render_table
from repro.macros import MacroSpec
from repro.macros.adder import StaticRippleAdder
from repro.sizing import DelaySpec, RegularityCollapsedSizer, SmartSizer
from repro.sizing.engine import nominal_delay

WIDTH = 64


def _per_bit_adder(tech, width):
    return StaticRippleAdder().build(
        MacroSpec("adder", width, params=(("label_group", 1),)), tech
    )


@pytest.fixture(scope="module")
def experiment(tech, library, bench_extra):
    """One collapsed and one full solve of the per-bit 64-bit adder."""
    circuit = _per_bit_adder(tech, WIDTH)
    spec = DelaySpec(data=0.9 * nominal_delay(circuit, library))

    t0 = time.perf_counter()
    collapsed = RegularityCollapsedSizer(
        circuit, library, with_kkt=False
    ).size(spec)
    collapsed_total = time.perf_counter() - t0

    t0 = time.perf_counter()
    full = SmartSizer(circuit, library).size(spec)
    full_wall = time.perf_counter() - t0

    bench_extra.update({
        "collapsed_gp_wall_s": round(collapsed.collapsed_runtime_s, 3),
        "full_gp_wall_s": round(full_wall, 3),
        "collapsed_vs_full_gp_speedup": round(
            full_wall / max(collapsed.collapsed_runtime_s, 1e-9), 1
        ),
        "certificate_check_wall_s": round(collapsed.certify_runtime_s, 3),
        "collapsed_end_to_end_s": round(collapsed_total, 3),
        "collapsed_free_labels": collapsed.collapsed_free,
        "full_free_labels": collapsed.full_free,
    })
    return circuit, spec, collapsed, full, collapsed_total, full_wall


def test_collapse_table(experiment):
    circuit, _spec, collapsed, full, collapsed_total, full_wall = experiment
    rows = [
        (
            "full GP",
            collapsed.full_free,
            f"{full_wall:.2f}",
            "-",
            norm(1.0),
            "yes" if full.converged else "NO",
        ),
        (
            "collapsed + certificate",
            collapsed.collapsed_free,
            f"{collapsed.collapsed_runtime_s:.2f}",
            f"{collapsed.certify_runtime_s:.2f}",
            norm(collapsed.result.area / full.area),
            "yes" if collapsed.certificate.ok else "NO",
        ),
    ]
    render_table(
        f"Slice-collapsed sizing: {WIDTH}-bit per-bit adder",
        ("sizer", "GP variables", "GP wall s", "certify wall s",
         "norm area", "certified"),
        rows,
    )


def test_collapse_reduces_gp_to_constant_size(experiment):
    _c, _s, collapsed, _f, _ct, _fw = experiment
    assert not collapsed.fallback, collapsed.fallback_reason
    assert collapsed.full_free == 8 * WIDTH
    # One representative per equivalence class: bounded by the slice
    # vocabulary, not the datapath width.
    assert collapsed.collapsed_free < 40


def test_collapsed_gp_at_least_3x_faster(experiment):
    """The acceptance headline: collapsed GP solve >=3x faster than the
    full GP solve, with the certificate accepted."""
    _c, _s, collapsed, _f, _ct, full_wall = experiment
    assert collapsed.certificate is not None and collapsed.certificate.ok
    assert full_wall / collapsed.collapsed_runtime_s >= 3.0


def test_certificate_accepted_and_full_sta_verified(experiment):
    _c, _s, collapsed, _f, _ct, _fw = experiment
    cert = collapsed.certificate
    assert cert.ok
    assert cert.checks["OPT701"]["ok"]
    assert cert.checks["OPT703"]["ok"]
    # Full-STA residual at the replicated point, measured on the original
    # 512-label circuit, within the engine's own convergence tolerance.
    assert collapsed.result.worst_violation <= 2.0


def test_objective_parity_with_full_solve(experiment):
    """Flat slice-symmetric directions let widths wander; the objective
    must not."""
    _c, _s, collapsed, full, _ct, _fw = experiment
    assert abs(collapsed.result.area - full.area) / full.area <= 0.01


def test_bench_collapsed_sizing(benchmark, tech, library):
    """Tracked kernel: 16-bit per-bit collapse, solve, replicate, certify."""
    circuit = _per_bit_adder(tech, 16)
    spec = DelaySpec(data=0.9 * nominal_delay(circuit, library))

    def kernel():
        return RegularityCollapsedSizer(
            circuit, library, with_kkt=False
        ).size(spec)

    outcome = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert not outcome.fallback
    assert outcome.certificate is not None and outcome.certificate.ok
