"""Figure 4's refinement loop: convergence behavior of the sizer.

Two published claims:

* the loop "is iterated until the original performance constraints are
  satisfied" with final solutions "within a few pico-seconds" of spec — we
  check residuals across a corpus of macros;
* Section 5.1: "Better model accuracy leads to faster convergence" — we
  detune the component models (wrong slope sensitivity) and measure the
  extra iterations/residual.
"""

import pytest

from conftest import render_table
from repro.macros import MacroSpec
from repro.models import ModelLibrary
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay

CORPUS = [
    ("mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0)),
    ("mux/tristate", MacroSpec("mux", 4, output_load=60.0)),
    ("mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0)),
    ("zero_detect/static_tree", MacroSpec("zero_detect", 16, output_load=20.0)),
    ("decoder/flat_static", MacroSpec("decoder", 4, output_load=20.0)),
    ("incrementor/ripple", MacroSpec("incrementor", 8, output_load=20.0)),
    ("comparator/xorsum2", MacroSpec("comparator", 32, output_load=20.0)),
]

TOLERANCE_PS = 2.0  # "within a few pico-seconds"


@pytest.fixture(scope="module")
def runs(database, library):
    out = {}
    for topology, spec in CORPUS:
        circuit = database.generate(topology, spec, library.tech)
        budget = 0.9 * nominal_delay(circuit, library)
        result = SmartSizer(circuit, library).size(
            DelaySpec(data=budget), tolerance=TOLERANCE_PS
        )
        out[topology] = result
    return out


def test_figure4_table(runs):
    rows = [
        (topology, r.iterations, f"{r.worst_violation:.2f} ps",
         "yes" if r.converged else "NO")
        for topology, r in runs.items()
    ]
    render_table(
        "Figure 4 loop: GP <-> STA refinement across the macro corpus",
        ("macro", "iterations", "final residual", "converged"),
        rows,
    )


def test_whole_corpus_converges(runs):
    for topology, r in runs.items():
        assert r.converged, topology


def test_residuals_within_a_few_picoseconds(runs):
    for topology, r in runs.items():
        assert r.worst_violation <= TOLERANCE_PS, topology


def test_few_iterations_needed(runs):
    assert max(r.iterations for r in runs.values()) <= 6
    assert sum(r.iterations for r in runs.values()) / len(runs) <= 4.0


class TestModelAccuracyAblation:
    """"Better model accuracy leads to faster convergence" (Section 5.1).

    The GP runs on detuned models (wrong slope sensitivity / diffusion cap)
    while the "timing analysis tool" keeps the true models — the paper's
    posynomial-vs-PathMill split — so the Figure-4 loop has to iterate the
    mismatch away."""

    @pytest.fixture(scope="class")
    def comparison(self, database):
        from repro.models import Technology

        spec = MacroSpec("mux", 8, output_load=30.0)
        true_tech = Technology()
        true_lib = ModelLibrary(true_tech)
        outcomes = {}
        for label, overrides in [
            ("accurate GP models", {}),
            ("no slope term", {"slope_sensitivity": 1e-6}),
            ("optimistic RC", {"slope_sensitivity": 1e-6, "c_diff": 0.3,
                               "stack_derate": 0.6}),
        ]:
            gp_lib = ModelLibrary(true_tech.scaled(**overrides)) if overrides else true_lib
            circuit = database.generate("mux/unsplit_domino", spec, true_tech)
            budget = 0.9 * nominal_delay(circuit, true_lib)
            result = SmartSizer(
                circuit, gp_lib, analysis_library=true_lib
            ).size(
                DelaySpec(data=budget), tolerance=TOLERANCE_PS,
                max_outer_iterations=12,
            )
            outcomes[label] = result
        return outcomes

    def test_ablation_table(self, comparison):
        rows = [
            (label, r.iterations, f"{r.worst_violation:.2f} ps",
             "yes" if r.converged else "NO")
            for label, r in comparison.items()
        ]
        render_table(
            "Section 5.1 ablation: GP model accuracy vs loop convergence",
            ("GP models", "iterations", "final residual", "converged"),
            rows,
        )

    def test_all_still_converge(self, comparison):
        """The loop absorbs model error — that is its job."""
        for label, r in comparison.items():
            assert r.converged, label

    def test_worse_models_iterate_more(self, comparison):
        accurate = comparison["accurate GP models"].iterations
        worst = comparison["optimistic RC"].iterations
        assert worst > accurate


def test_bench_refinement_loop(benchmark, database, library):
    spec = MacroSpec("comparator", 32, output_load=20.0)
    circuit = database.generate("comparator/xorsum2", spec, library.tech)
    budget = 0.9 * nominal_delay(circuit, library)

    def kernel():
        return SmartSizer(circuit, library).size(DelaySpec(data=budget))

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.converged
