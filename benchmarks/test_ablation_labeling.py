"""Section 4's labeling trade-off, as an ablation.

Paper: "While associating every transistor with a unique size variable may
generate the solution with least transistor width, this may not be practical
from a layout regularity perspective."

We sweep the label-group size of a 16-bit ripple incrementor: per-bit labels
(group 1) vs grouped (4) vs fully shared (32), and measure the minimum-area
solution at a common delay plus the GP problem size.
"""

import pytest

from conftest import norm, render_table
from repro.macros import MacroSpec
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay

WIDTH = 16
GROUPS = (1, 4, WIDTH)


@pytest.fixture(scope="module")
def sweep(database, library):
    # Common budget from the most-constrained (fully shared) variant.
    shared = database.generate(
        "incrementor/ripple",
        MacroSpec("incrementor", WIDTH, params=(("label_group", WIDTH),)),
        library.tech,
    )
    budget = 0.9 * nominal_delay(shared, library)
    results = {}
    for group in GROUPS:
        circuit = database.generate(
            "incrementor/ripple",
            MacroSpec("incrementor", WIDTH, params=(("label_group", group),)),
            library.tech,
        )
        result = SmartSizer(circuit, library).size(DelaySpec(data=budget))
        results[group] = (circuit, result)
    return results


def test_labeling_table(sweep):
    base_area = sweep[GROUPS[-1]][1].area
    rows = [
        (
            f"group={group}" + (" (per bit)" if group == 1 else
                                " (fully shared)" if group == WIDTH else ""),
            len(circuit.size_table.free_names()),
            norm(result.area / base_area),
            "yes" if result.converged else "NO",
        )
        for group, (circuit, result) in sweep.items()
    ]
    render_table(
        f"Section 4 ablation: labeling granularity ({WIDTH}-bit ripple incrementor)",
        ("labeling", "GP variables", "norm area", "converged"),
        rows,
    )


def test_all_converge(sweep):
    for group, (_c, result) in sweep.items():
        assert result.converged, group


def test_finer_labels_never_worse(sweep):
    """Finer labeling strictly enlarges the feasible set, so minimum area is
    non-increasing as groups shrink."""
    areas = [sweep[g][1].area for g in GROUPS]  # fine -> coarse
    assert areas[0] <= areas[1] * 1.02
    assert areas[1] <= areas[2] * 1.02


def test_per_bit_least_width(sweep):
    """The paper's claim verbatim: unique labels give the least width."""
    assert sweep[1][1].area == min(r.area for _c, r in sweep.values())


def test_variable_count_tradeoff(sweep):
    """...at the cost of a much larger sizing problem."""
    fine = len(sweep[1][0].size_table.free_names())
    coarse = len(sweep[WIDTH][0].size_table.free_names())
    assert fine > 4 * coarse


def test_bench_per_bit_sizing(benchmark, database, library):
    circuit = database.generate(
        "incrementor/ripple",
        MacroSpec("incrementor", WIDTH, params=(("label_group", 1),)),
        library.tech,
    )
    budget = 0.95 * nominal_delay(circuit, library)

    def kernel():
        return SmartSizer(circuit, library).size(DelaySpec(data=budget))

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.converged
