"""Section 6.4's first block experiment.

Paper: "This particular block has over 13,800 transistors in it, and datapath
macros accounted for 22% of the total transistor width, and 36% of the total
power.  On applying SMART to the macros in the design, we achieved about 8%
reduction in the total transistor width along with 8% power reduction on the
overall design (measured using PowerMill).  A timing analysis on the new
design showed no performance penalty."
"""

import pytest

from conftest import pct, render_table
from repro.blocks import MacroInstanceSpec, build_block, reduce_block_power
from repro.macros import MacroSpec

MENU = [
    MacroInstanceSpec("mux/unsplit_domino", MacroSpec("mux", 16, output_load=30.0), 8),
    MacroInstanceSpec("mux/partitioned_domino", MacroSpec("mux", 16, output_load=30.0), 5),
    MacroInstanceSpec("mux/strong_mutex_passgate", MacroSpec("mux", 8, output_load=40.0), 8),
    MacroInstanceSpec("incrementor/prefix", MacroSpec("incrementor", 16, output_load=20.0), 4),
    MacroInstanceSpec("zero_detect/domino", MacroSpec("zero_detect", 32), 4),
    MacroInstanceSpec("decoder/predecoded", MacroSpec("decoder", 5, output_load=15.0), 2),
]

#: The paper's composition target.
MACRO_WIDTH_FRACTION = 0.22


@pytest.fixture(scope="module")
def block(library):
    return build_block(
        "sec64_block", MENU, MACRO_WIDTH_FRACTION, library=library, seed=64
    )


@pytest.fixture(scope="module")
def reduction(block):
    return reduce_block_power(block)


def test_section_6_4_table(block, reduction):
    rows = [
        ("transistors", f"{block.transistor_count()}", ">13,800"),
        ("macro width fraction", pct(block.macro_width_fraction), "22%"),
        ("macro power fraction", pct(block.macro_power_fraction()), "36%"),
        ("block width reduction", pct(reduction.width_saving), "~8%"),
        ("block power reduction", pct(reduction.power_saving), "~8%"),
        (
            "performance penalty",
            "none" if reduction.no_performance_penalty else "YES",
            "none",
        ),
    ]
    render_table(
        "Section 6.4: whole-block experiment (measured vs paper)",
        ("quantity", "measured", "paper"),
        rows,
    )


def test_block_scale(block):
    """Thousands of transistors, same order as the paper's 13.8k block."""
    assert block.transistor_count() > 10_000


def test_macro_width_fraction_near_22pct(block):
    assert block.macro_width_fraction == pytest.approx(0.22, abs=0.05)


def test_macro_power_share_exceeds_width_share(block):
    """The 22%-width / 36%-power asymmetry: clocked macros burn more than
    their area share."""
    assert block.macro_power_fraction() > block.macro_width_fraction * 1.2


def test_block_level_savings_band(reduction):
    """Paper: ~8% width and ~8% power at block level."""
    assert 0.02 < reduction.width_saving < 0.20
    assert 0.02 < reduction.power_saving < 0.20


def test_no_performance_penalty(reduction):
    assert reduction.no_performance_penalty


def test_bench_whole_block(benchmark, library):
    def kernel():
        blk = build_block(
            "sec64_bench", MENU[:3], MACRO_WIDTH_FRACTION, library=library, seed=9
        )
        return reduce_block_power(blk)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.power_saving > 0
