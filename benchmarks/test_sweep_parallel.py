"""Sweep benchmark: parallel speedup and cache effectiveness.

Protocol: an 8-point spec grid (mux widths 4/8/16 and decoder width 4,
each at two delay targets) is advised
three ways —

1. sequential, no cache (the baseline wall-clock);
2. parallel (4 workers), cold shared cache;
3. parallel again over the *same* backing cache file (the warm pass).

The shape asserted: the warm pass is dominated by exact cache hits
(>= 80 % hit rate) whose envs match the cold pass within 1e-9, and on a
multi-core host the parallel cold pass beats sequential by >= 1.5x.  The
speedup is *recorded* unconditionally in the result JSON but only asserted
where the hardware can physically deliver it.
"""

import json
import os

import pytest

from conftest import RESULTS_DIR, _obs_stamp, render_table
from repro.cache import SizingCache
from repro.parallel import build_grid, run_sweep

WORKERS = 4

#: 8 grid points spanning two macros and two delay targets (every point has
#: at least one feasible topology at these budgets).
GRID = (
    build_grid(["mux"], [4, 8, 16], [300.0, 420.0])
    + build_grid(["decoder"], [4], [300.0, 420.0])
)


@pytest.fixture(scope="module")
def sweep_runs(database, tech, tmp_path_factory):
    cache_path = str(tmp_path_factory.mktemp("sweep") / "cache.jsonl")
    sequential = run_sweep(
        GRID, workers=1, cache=None, database=database, tech=tech
    )
    cold = run_sweep(
        GRID, workers=WORKERS, cache=SizingCache(cache_path),
        database=database, tech=tech,
    )
    warm = run_sweep(
        GRID, workers=WORKERS, cache=SizingCache(cache_path),
        database=database, tech=tech,
    )
    return sequential, cold, warm


def _record(sequential, cold, warm):
    speedup = sequential.wall_s / cold.wall_s if cold.wall_s else 0.0
    payload = {
        "format": "smart-sweep-bench/1",
        "grid_points": len(GRID),
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "sequential_wall_s": round(sequential.wall_s, 6),
        "parallel_wall_s": round(cold.wall_s, 6),
        "speedup": round(speedup, 4),
        "cold": cold.to_json(),
        "warm": warm.to_json(),
        "obs": _obs_stamp(),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "sweep_parallel.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
    return payload


class TestSweepParallelBench:
    def test_all_points_solved_identically(self, sweep_runs):
        sequential, cold, warm = sweep_runs
        assert sequential.complete and cold.complete and warm.complete
        for a, b, c in zip(sequential.points, cold.points, warm.points):
            assert a.best_topology == b.best_topology == c.best_topology
            assert b.best_scalar == pytest.approx(a.best_scalar, abs=1e-9)
            assert c.best_scalar == pytest.approx(a.best_scalar, abs=1e-9)
            assert c.best_area == pytest.approx(b.best_area, abs=1e-9)

    def test_speedup_recorded_and_asserted_where_possible(self, sweep_runs):
        sequential, cold, warm = sweep_runs
        payload = _record(sequential, cold, warm)
        render_table(
            "Sweep parallel speedup and cache hit rate",
            ["pass", "wall s", "speedup", "exact hits", "hit rate"],
            [
                ["sequential", f"{sequential.wall_s:.3f}", "1.00", "-", "-"],
                [
                    f"parallel x{WORKERS} (cold)",
                    f"{cold.wall_s:.3f}",
                    f"{payload['speedup']:.2f}",
                    str(cold.cache_stats.get("exact_hits", 0)),
                    f"{cold.cache_stats.get('hit_rate', 0.0):.2f}",
                ],
                [
                    f"parallel x{WORKERS} (warm)",
                    f"{warm.wall_s:.3f}",
                    "-",
                    str(warm.cache_stats.get("exact_hits", 0)),
                    f"{warm.cache_stats.get('hit_rate', 0.0):.2f}",
                ],
            ],
        )
        assert payload["speedup"] > 0
        if (os.cpu_count() or 1) < 2:
            pytest.skip(
                "single-CPU host: speedup recorded "
                f"({payload['speedup']:.2f}x) but not asserted"
            )
        assert payload["speedup"] >= 1.5, (
            f"parallel x{WORKERS} speedup {payload['speedup']:.2f}x < 1.5x "
            f"on a {os.cpu_count()}-core host"
        )

    def test_warm_pass_hit_rate(self, sweep_runs):
        _, cold, warm = sweep_runs
        assert cold.cache_stats["exact_hits"] == 0
        assert warm.cache_stats["exact_hits"] > 0
        assert warm.cache_stats["hit_rate"] >= 0.8
        assert warm.cache_stats["verify_failures"] == 0

    def test_warm_pass_saves_wall_time(self, sweep_runs):
        _, _, warm = sweep_runs
        assert warm.cache_stats["wall_saved_s"] > 0
