"""Figure 5(a): normalized transistor width, original vs SMART, incrementors.

Paper instances: 3bitinc, 3bitdec, 13bitinc, 13bitinc, 27bitinc, 39bitinc,
47bitinc, 48bitinc, 64bitdec.  The original designs are proprietary; the
over-design baseline (see DESIGN.md) plays their role.  The reproduced shape:
every SMART bar sits well below 1.0 at unchanged timing.
"""

import pytest

from conftest import norm, pct, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec

#: (label, family, topology, width, load) — topology choice follows practice:
#: ripple below ~16 bits, prefix lookahead above.
INSTANCES = [
    ("3bitinc", "incrementor", "incrementor/ripple", 3, 15.0),
    ("3bitdec", "decrementor", "decrementor/ripple", 3, 15.0),
    ("13bitinc", "incrementor", "incrementor/ripple", 13, 20.0),
    ("13bitinc#2", "incrementor", "incrementor/prefix", 13, 30.0),
    ("27bitinc", "incrementor", "incrementor/prefix", 27, 20.0),
    ("39bitinc", "incrementor", "incrementor/prefix", 39, 25.0),
    ("47bitinc", "incrementor", "incrementor/prefix", 47, 20.0),
    ("48bitinc", "incrementor", "incrementor/prefix", 48, 35.0),
    ("64bitdec", "decrementor", "decrementor/prefix", 64, 20.0),
]


@pytest.fixture(scope="module")
def results(database, library):
    out = {}
    for label, family, topology, width, load in INSTANCES:
        spec = MacroSpec(family, width, output_load=load)
        out[label] = macro_savings(database, topology, spec, library)
    return out


def test_figure_5a_table(results):
    rows = [
        (label, norm(1.0), norm(r.normalized_width), pct(r.width_saving),
         "yes" if r.timing_met else "NO")
        for label, r in results.items()
    ]
    render_table(
        "Figure 5(a): incrementors — normalized total transistor width",
        ("circuit", "original", "SMART", "saving", "timing met"),
        rows,
    )


def test_all_instances_meet_timing(results):
    for label, r in results.items():
        assert r.timing_met, label


def test_all_instances_save_width(results):
    """The paper's bars all sit visibly below 1.0."""
    for label, r in results.items():
        assert r.width_saving > 0.05, (label, r.width_saving)


def test_large_improvements_available(results):
    """"Large improvements in area and power can be obtained": the corpus
    average saving is substantial."""
    average = sum(r.width_saving for r in results.values()) / len(results)
    assert average > 0.20


def test_bench_sizing_kernel(benchmark, database, library):
    spec = MacroSpec("incrementor", 13, output_load=20.0)

    def kernel():
        return macro_savings(database, "incrementor/ripple", spec, library)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
