"""Hierarchical contract lint vs flat re-analysis: the incrementality bench.

The acceptance bar for the contract subsystem: on an unchanged multi-macro
block, a warm ``lint --hier --changed-only`` run must execute at most 10%
of the rule invocations a cold flat run pays (everything else replayed
from contracts / the rule cache), while producing byte-identical findings.
"""

import time

import pytest

from conftest import render_table
from repro.blocks import demo_block
from repro.cache.contracts import ContractStore
from repro.lint import lint_circuit, render_text
from repro.lint.hier import flatten, hier_from_block, lint_hier


@pytest.fixture(scope="module")
def block(library):
    return hier_from_block(demo_block(library))


@pytest.fixture(scope="module")
def passes(block, library):
    """(cold flat per-instance cost, cold hier result, warm hier result)."""
    # Cold flat comparator: what a non-hierarchical analyzer pays — every
    # instance fully re-linted, every rule executed.
    t0 = time.perf_counter()
    flat_invocations = 0
    flat_findings = []
    for inst in block.instances:
        report = lint_circuit(inst.circuit)
        flat_invocations += len(report.executed)
        flat_findings.extend(d.format() for d in report.diagnostics)
    flat_wall = time.perf_counter() - t0

    store = ContractStore()
    t0 = time.perf_counter()
    cold = lint_hier(block, library, store)
    cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = lint_hier(block, library, store, changed_only=True)
    warm_wall = time.perf_counter() - t0
    return {
        "flat_invocations": flat_invocations,
        "flat_findings": flat_findings,
        "flat_wall": flat_wall,
        "cold": cold,
        "cold_wall": cold_wall,
        "warm": warm,
        "warm_wall": warm_wall,
    }


def _findings(result):
    return [render_text(r) for r in result.reports]


def test_warm_run_executes_at_most_10pct_of_cold_flat(passes):
    warm = passes["warm"]
    executed = warm.stats.rules_executed
    ratio = executed / passes["flat_invocations"]
    assert ratio <= 0.10, (
        f"warm hier executed {executed} rules vs {passes['flat_invocations']} "
        f"cold flat invocations ({ratio:.0%} > 10%)"
    )


def test_warm_findings_byte_identical_to_cold(passes):
    assert _findings(passes["warm"]) == _findings(passes["cold"])


def test_warm_hit_rate_above_90pct(passes):
    assert passes["warm"].stats.hit_rate >= 0.9
    assert passes["warm"].stats.contracts_derived == 0


def test_contract_composition_has_no_false_negatives(passes, block, library):
    """Flat lint of the flattened block may not find errors the composed
    analysis missed (over-reporting is allowed, under-reporting is not)."""
    flat_report = lint_circuit(flatten(block))
    hier_ok = passes["cold"].ok
    assert not (flat_report.errors and hier_ok), (
        "flat analysis found errors the contract composition missed: "
        + "; ".join(d.format() for d in flat_report.errors)
    )


def test_hier_lint_table(passes, block):
    cold, warm = passes["cold"], passes["warm"]
    rows = [
        ("instances", f"{len(block.instances)}", ""),
        ("connections", f"{len(block.connections)}", ""),
        ("cold flat rule invocations", f"{passes['flat_invocations']}", ""),
        (
            "warm hier executed",
            f"{warm.stats.rules_executed}",
            f"{warm.stats.rules_executed / passes['flat_invocations']:.1%}",
        ),
        ("warm hier replayed", f"{warm.stats.rules_replayed}", ""),
        ("warm hit rate", f"{warm.stats.hit_rate:.1%}", ">=90%"),
        ("cold hier wall", f"{passes['cold_wall'] * 1e3:.1f} ms", ""),
        ("warm hier wall", f"{passes['warm_wall'] * 1e3:.1f} ms", ""),
        ("cold flat wall", f"{passes['flat_wall'] * 1e3:.1f} ms", ""),
        (
            "contracts derived/reused",
            f"{cold.stats.contracts_derived}/{warm.stats.contracts_reused}",
            "",
        ),
    ]
    render_table(
        "Hierarchical contract lint: cold flat vs warm composed",
        ("quantity", "measured", "bar"),
        rows,
    )


def test_bench_hier_lint_kernel(block, library):
    """Timed kernel: one warm hier pass over a pre-built contract store."""
    store = ContractStore()
    lint_hier(block, library, store)
    t0 = time.perf_counter()
    result = lint_hier(block, library, store, changed_only=True)
    wall = time.perf_counter() - t0
    assert result.stats.contracts_reused == len(
        {id(i.circuit) for i in block.instances}
    )
    print(f"\nwarm hier lint kernel: {wall * 1e3:.2f} ms")
