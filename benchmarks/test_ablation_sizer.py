"""Sizer ablation: SMART's GP formulation vs the traditional iterative
sizer (TILOS-style, the paper's reference [1]).

Section 5's positioning claim, measured: the GP sizer (a) meets targets the
greedy heuristic gives up on, (b) matches or beats its area where both
succeed, and (c) simultaneously holds the slope/noise constraints the
heuristic never sees.
"""

import pytest

from conftest import render_table
from repro.macros import MacroSpec
from repro.sizing import DelaySpec, SmartSizer, TilosSizer
from repro.sizing.engine import measure_slopes, nominal_delay

CORPUS = [
    ("mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0)),
    ("mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0)),
    ("zero_detect/static_tree", MacroSpec("zero_detect", 16, output_load=20.0)),
    ("decoder/flat_static", MacroSpec("decoder", 4, output_load=20.0)),
    ("incrementor/ripple", MacroSpec("incrementor", 8, output_load=20.0)),
]

TARGET_FRACTION = 0.85


@pytest.fixture(scope="module")
def comparison(database, library):
    rows = {}
    for topology, spec in CORPUS:
        circuit_t = database.generate(topology, spec, library.tech)
        target = TARGET_FRACTION * nominal_delay(circuit_t, library)
        tilos = TilosSizer(circuit_t, library).size(target)
        _o, tilos_slope = measure_slopes(circuit_t, library, tilos.widths)

        circuit_g = database.generate(topology, spec, library.tech)
        gp = SmartSizer(circuit_g, library).size(
            DelaySpec(data=target, max_output_slope=1e6, max_internal_slope=1e6)
        )
        gp_constrained = SmartSizer(
            database.generate(topology, spec, library.tech), library
        ).size(DelaySpec(data=target))
        _o2, gp_slope = measure_slopes(
            circuit_g, library, gp_constrained.widths
        ) if gp_constrained.converged else (0.0, float("nan"))
        rows[topology] = (target, tilos, gp, gp_constrained, tilos_slope, gp_slope)
    return rows


def test_sizer_comparison_table(comparison):
    table_rows = []
    for topology, (target, tilos, gp, gpc, ts, gs) in comparison.items():
        table_rows.append(
            (
                topology,
                f"{target:.0f}",
                ("met" if tilos.met else "FAILED") + f" / {tilos.area:.0f}um",
                ("met" if gp.converged else "FAILED") + f" / {gp.area:.0f}um",
                f"{ts:.0f}ps vs {gs:.0f}ps",
            )
        )
    render_table(
        "Sizer ablation: TILOS-style heuristic vs SMART GP "
        "(target / outcome / worst internal slope)",
        ("macro", "target ps", "TILOS", "SMART GP", "slopes (TILOS vs GP)"),
        table_rows,
    )


def test_gp_always_converges(comparison):
    for topology, (_t, _tilos, gp, _gpc, _ts, _gs) in comparison.items():
        assert gp.converged, topology


def test_gp_no_worse_where_both_meet(comparison):
    for topology, (_t, tilos, gp, _gpc, _ts, _gs) in comparison.items():
        if tilos.met:
            assert gp.area <= tilos.area * 1.10, topology


def test_gp_wins_somewhere(comparison):
    """At least one macro where the heuristic fails the target or needs
    more area — SMART's raison d'etre on macros."""
    wins = 0
    for topology, (_t, tilos, gp, _gpc, _ts, _gs) in comparison.items():
        if not tilos.met or gp.area < tilos.area * 0.97:
            wins += 1
    assert wins >= 1


def test_constrained_gp_bounds_slopes(comparison):
    # 15% headroom: the GP's slope constraints freeze upstream input slopes
    # at the spec value; the measured slope re-chains real upstream edges.
    for topology, (_t, _tilos, _gp, gpc, _ts, gs) in comparison.items():
        if gpc.converged:
            assert gs <= 350.0 * 1.15, topology


def test_bench_tilos_runtime(benchmark, database, library):
    spec = MacroSpec("mux", 4, output_load=30.0)
    circuit = database.generate("mux/strong_mutex_passgate", spec, library.tech)
    target = 0.9 * nominal_delay(circuit, library)

    def kernel():
        return TilosSizer(circuit, library).size(target)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.iterations > 0
