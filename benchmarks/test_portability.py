"""Technology portability: the Figure-5 protocol at a second process node.

The methodology's premise is that the database + sizer port across process
generations (the paper's "continuous innovation ... each generation").  The
same savings experiment at the faster, lower-voltage GENERIC_130 node must
land in the same qualitative band as GENERIC_180.
"""

import pytest

from conftest import pct, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec
from repro.models import GENERIC_130, GENERIC_180, ModelLibrary

CORPUS = [
    ("13b incrementor", "incrementor/ripple",
     MacroSpec("incrementor", 13, output_load=20.0), "area"),
    ("16b zero detect", "zero_detect/static_tree",
     MacroSpec("zero_detect", 16, output_load=20.0), "area"),
    ("8:1 domino mux", "mux/unsplit_domino",
     MacroSpec("mux", 8, output_load=30.0), "area+clock"),
]


@pytest.fixture(scope="module")
def per_node(database):
    out = {}
    for node in (GENERIC_180, GENERIC_130):
        library = ModelLibrary(node)
        rows = {}
        for label, topology, spec, objective in CORPUS:
            rows[label] = macro_savings(
                database, topology, spec, library, objective=objective
            )
        out[node.name] = rows
    return out


def test_portability_table(per_node):
    rows = []
    for node, results in per_node.items():
        for label, r in results.items():
            rows.append(
                (node, label, pct(r.width_saving),
                 "yes" if r.timing_met else "NO")
            )
    render_table(
        "Technology portability: Section-6.1 savings at two process nodes",
        ("node", "macro", "width saving", "timing met"),
        rows,
    )


def test_both_nodes_meet_timing(per_node):
    for node, results in per_node.items():
        for label, r in results.items():
            assert r.timing_met, (node, label)


def test_savings_band_holds_across_nodes(per_node):
    for node, results in per_node.items():
        for label, r in results.items():
            assert r.width_saving > 0.05, (node, label)


def test_savings_correlate_across_nodes(per_node):
    """Per-macro savings at the two nodes differ by bounded amounts (the
    mechanism is sizing waste, not a process accident)."""
    r180 = per_node[GENERIC_180.name]
    r130 = per_node[GENERIC_130.name]
    for label in r180:
        assert abs(r180[label].width_saving - r130[label].width_saving) < 0.25, label


def test_bench_second_node(benchmark, database):
    library = ModelLibrary(GENERIC_130)
    spec = MacroSpec("zero_detect", 16, output_load=20.0)

    def kernel():
        return macro_savings(database, "zero_detect/static_tree", spec, library)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
