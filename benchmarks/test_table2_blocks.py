"""Table 2: post-layout power savings on four functional blocks.

Paper:

    Block1 (instruction alignment)  41%
    Block2 (execution bypass)       22%
    Block3 (execution bypass)       19%
    Block4 (instruction fetch)       7%

The blocks were proprietary; we compose synthetic blocks whose macro content
brackets the description — Block1 domino-mux heavy (alignment shifters are
mux trees), Blocks 2-3 bypass-mux dominated with less macro share, Block4
mostly random fetch control with a small macro population — and verify the
induced ordering 41 > 22 ~ 19 > 7 plus the bands' spread.
"""

import pytest

from conftest import pct, render_table
from repro.blocks import MacroInstanceSpec, build_block, reduce_block_power
from repro.macros import MacroSpec


def _block_menus():
    return {
        "Block1 (instruction alignment)": (
            [
                MacroInstanceSpec(
                    "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), 4
                ),
                MacroInstanceSpec(
                    "mux/partitioned_domino", MacroSpec("mux", 16, output_load=30.0), 2
                ),
                MacroInstanceSpec(
                    "decoder/domino", MacroSpec("decoder", 3, output_load=20.0), 2
                ),
            ],
            0.60,
        ),
        "Block2 (execution bypass)": (
            [
                MacroInstanceSpec(
                    "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), 2
                ),
                MacroInstanceSpec(
                    "mux/strong_mutex_passgate", MacroSpec("mux", 6, output_load=40.0), 3
                ),
                MacroInstanceSpec(
                    "zero_detect/domino", MacroSpec("zero_detect", 16), 1
                ),
            ],
            0.40,
        ),
        "Block3 (execution bypass)": (
            [
                MacroInstanceSpec(
                    "mux/strong_mutex_passgate", MacroSpec("mux", 8, output_load=30.0), 3
                ),
                MacroInstanceSpec(
                    "mux/tristate", MacroSpec("mux", 6, output_load=80.0), 2
                ),
                MacroInstanceSpec(
                    "zero_detect/split_domino", MacroSpec("zero_detect", 16), 1
                ),
            ],
            0.38,
        ),
        "Block4 (instruction fetch)": (
            [
                MacroInstanceSpec(
                    "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0), 2
                ),
                MacroInstanceSpec(
                    "incrementor/prefix", MacroSpec("incrementor", 16, output_load=20.0), 1
                ),
            ],
            0.14,
        ),
    }


@pytest.fixture(scope="module")
def reductions(library):
    out = {}
    for seed, (name, (menu, fraction)) in enumerate(_block_menus().items(), start=11):
        block = build_block(
            name, menu, macro_width_fraction=fraction, library=library, seed=seed
        )
        out[name] = (block, reduce_block_power(block))
    return out


def test_table2(reductions):
    rows = [
        (
            name,
            f"{block.transistor_count()}",
            pct(block.macro_width_fraction),
            pct(block.macro_power_fraction()),
            pct(result.power_saving),
        )
        for name, (block, result) in reductions.items()
    ]
    render_table(
        "Table 2: block-level power savings with SMART",
        ("block", "transistors", "macro width", "macro power", "power saving"),
        rows,
    )


def test_ordering_matches_paper(reductions):
    """41 > 22 >= 19 > 7: alignment >> bypass blocks > fetch."""
    savings = {name: r.power_saving for name, (_b, r) in reductions.items()}
    s1 = savings["Block1 (instruction alignment)"]
    s2 = savings["Block2 (execution bypass)"]
    s3 = savings["Block3 (execution bypass)"]
    s4 = savings["Block4 (instruction fetch)"]
    assert s1 > s2 > s4
    assert s1 > s3 > s4
    assert s1 > 2.0 * s4

    # Bands: the top block saves tens of percent, the fetch block single digits.
    assert s1 > 0.15
    assert s4 < 0.12


def test_no_performance_penalty_anywhere(reductions):
    for name, (_block, result) in reductions.items():
        assert result.no_performance_penalty, name


def test_bench_block_reduction(benchmark, library):
    menu = [
        MacroInstanceSpec(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), 2
        ),
    ]

    def kernel():
        block = build_block("bench", menu, 0.4, library=library, seed=3)
        return reduce_block_power(block)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.power_saving > 0
