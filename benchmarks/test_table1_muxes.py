"""Table 1: average savings per mux topology.

Paper numbers (average over multiple instances each):

    Strongly Mutex Passgate          15% width, clock n/a
    2-Input Passgate Mux (encoded)   25% width, clock n/a
    Tri-state Mux                    16% width, clock n/a
    Un-split Domino                  45% width, 39% clock
    Split Domino                     42% width, 28% clock

The reproduced *shape*: every topology saves width; clock savings exist only
for the domino rows; domino width savings exceed the pass-gate family's.
"""

import pytest

from conftest import pct, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec

#: topology -> (instances, objective).  Multiple instances per row, per the
#: paper ("for each topology we considered multiple instances").
CORPUS = {
    "Strongly Mutex Passgate": (
        "mux/strong_mutex_passgate",
        [MacroSpec("mux", 4, output_load=40.0),
         MacroSpec("mux", 6, output_load=40.0),
         MacroSpec("mux", 8, output_load=25.0)],
        "area",
    ),
    "2-Input Passgate (encoded)": (
        "mux/encoded_select_2to1",
        [MacroSpec("mux", 2, output_load=25.0),
         MacroSpec("mux", 2, output_load=40.0),
         MacroSpec("mux", 2, output_load=60.0)],
        "area",
    ),
    "Tri-state Mux": (
        "mux/tristate",
        [MacroSpec("mux", 4, output_load=80.0),
         MacroSpec("mux", 6, output_load=80.0),
         MacroSpec("mux", 8, output_load=120.0)],
        "area",
    ),
    "Un-split Domino": (
        "mux/unsplit_domino",
        [MacroSpec("mux", 8, output_load=30.0),
         MacroSpec("mux", 12, output_load=30.0),
         MacroSpec("mux", 16, output_load=40.0)],
        "area+clock",
    ),
    "Split Domino": (
        "mux/partitioned_domino",
        [MacroSpec("mux", 8, output_load=30.0),
         MacroSpec("mux", 12, output_load=30.0),
         MacroSpec("mux", 16, output_load=40.0)],
        "area+clock",
    ),
}


@pytest.fixture(scope="module")
def averages(database, library):
    out = {}
    for row, (topology, instances, objective) in CORPUS.items():
        results = [
            macro_savings(database, topology, spec, library, objective=objective)
            for spec in instances
        ]
        assert all(r.timing_met for r in results), row
        width = sum(r.width_saving for r in results) / len(results)
        has_clock = any(r.baseline.clock_load > 0 for r in results)
        clock = (
            sum(r.clock_saving for r in results) / len(results)
            if has_clock
            else None
        )
        out[row] = (width, clock)
    return out


def test_table1(averages):
    rows = [
        (row, pct(width), pct(clock) if clock is not None else "n/a")
        for row, (width, clock) in averages.items()
    ]
    render_table(
        "Table 1: average savings per mux topology",
        ("topology", "width saving", "clock saving"),
        rows,
    )


def test_every_topology_saves_width(averages):
    for row, (width, _clock) in averages.items():
        assert width > 0.05, row


def test_clock_savings_only_for_domino(averages):
    for row, (_width, clock) in averages.items():
        if "Domino" in row:
            assert clock is not None and clock > 0.0, row
        else:
            assert clock is None, row


def test_domino_rows_recover_most(averages):
    """The paper's headline: domino topologies benefit most (45/42% width
    plus 39/28% clock vs 15-25% width for the pass-gate family).  Our
    robust rendition: each domino row's *combined* recovery (width + clock)
    exceeds every pass-gate row's width recovery."""
    passgate_best = max(
        averages["Strongly Mutex Passgate"][0],
        averages["2-Input Passgate (encoded)"][0],
        averages["Tri-state Mux"][0],
    )
    for row in ("Un-split Domino", "Split Domino"):
        width, clock = averages[row]
        assert width + clock > passgate_best, row


def test_bench_table1_kernel(benchmark, database, library):
    spec = MacroSpec("mux", 8, output_load=30.0)

    def kernel():
        return macro_savings(
            database, "mux/unsplit_domino", spec, library, objective="area+clock"
        )

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
