"""Interval-STA pre-GP screen: hit rate and wall-clock saved.

Not a paper figure — an infrastructure benchmark for the DFA303 screen.
Over a mix of over-constrained instances (1 ps: impossible for any macro)
we record how many the screen proves infeasible (the *hit rate*) and how
much cheaper the proof is than letting the GP-route reject the same spec
(pre-solve lint + solver); over generously-budgeted instances we record
that the screen never cries wolf.
"""

import time

import pytest

from conftest import pct, render_table
from repro.lint.dataflow.interval import screen_feasibility
from repro.macros import MacroSpec
from repro.sizing import DelaySpec, SizingError, SmartSizer

#: (label, topology, macro_type, width, budget ps) — representatives per
#: family kind (static, pass-gate, tristate, domino), all over-constrained.
#: The adder runs at a *non-trivial* 50 ps, where the saving is real: the
#: GP route must extract >1000 paths before its own lint can reject.
OVER_CONSTRAINED = [
    ("mux4_static", "mux/strong_mutex_passgate", "mux", 4, 1.0),
    ("mux8_tristate", "mux/tristate", "mux", 8, 1.0),
    ("mux8_domino", "mux/unsplit_domino", "mux", 8, 1.0),
    ("zdet8_domino", "zero_detect/domino", "zero_detect", 8, 1.0),
    ("dec4_domino", "decoder/domino", "decoder", 4, 1.0),
    ("inc8_ripple", "incrementor/ripple", "incrementor", 8, 1.0),
    ("cla16_domino", "adder/dual_rail_domino_cla", "adder", 16, 50.0),
]

GENEROUS = [
    ("mux4_static", "mux/strong_mutex_passgate", "mux", 4, 400.0),
    ("zdet8_static", "zero_detect/static_tree", "zero_detect", 8, 400.0),
]

IMPOSSIBLE_PS = 1.0


@pytest.fixture(scope="module")
def screen_results(database, library, tech):
    rows = []
    for label, topology, macro_type, width, budget in OVER_CONSTRAINED:
        circuit = database.generate(
            topology, MacroSpec(macro_type, width, output_load=30.0), tech
        )
        spec = DelaySpec(data=budget)

        t0 = time.perf_counter()
        screen = screen_feasibility(circuit, library, spec)
        screen_s = time.perf_counter() - t0

        # The route the screen short-circuits: build the GP and let the
        # pre-solve lint / solver reject it.
        t0 = time.perf_counter()
        with pytest.raises(SizingError):
            SmartSizer(circuit, library, pre_screen=False).size(spec)
        gp_route_s = time.perf_counter() - t0

        rows.append({
            "label": label,
            "verdict": screen.verdict,
            "screen_s": screen_s,
            "gp_route_s": gp_route_s,
        })
    return rows


def test_screen_hit_rate_and_savings_table(screen_results):
    hits = sum(r["verdict"] == "provably-infeasible" for r in screen_results)
    hit_rate = hits / len(screen_results)
    total_screen = sum(r["screen_s"] for r in screen_results)
    total_gp = sum(r["gp_route_s"] for r in screen_results)
    rows = [
        (
            r["label"], r["verdict"],
            f"{r['screen_s'] * 1e3:.1f}",
            f"{r['gp_route_s'] * 1e3:.1f}",
            f"{(r['gp_route_s'] - r['screen_s']) * 1e3:.1f}",
        )
        for r in screen_results
    ]
    rows.append((
        "TOTAL", f"hit rate {pct(hit_rate)}",
        f"{total_screen * 1e3:.1f}", f"{total_gp * 1e3:.1f}",
        f"{(total_gp - total_screen) * 1e3:.1f}",
    ))
    render_table(
        "Dataflow screen: interval-STA hit rate and wall-clock saved",
        ("instance", "verdict", "screen ms", "gp-route ms", "saved ms"),
        rows,
    )
    assert hit_rate == 1.0  # every over-constrained instance proven


def test_screen_never_cries_wolf(database, library, tech):
    for label, topology, macro_type, width, budget in GENEROUS:
        circuit = database.generate(
            topology, MacroSpec(macro_type, width, output_load=30.0), tech
        )
        screen = screen_feasibility(circuit, library, DelaySpec(data=budget))
        assert not screen.infeasible, (label, screen.verdict)


def test_bench_screen(benchmark, database, library, tech):
    circuit = database.generate(
        "zero_detect/domino", MacroSpec("zero_detect", 8, output_load=30.0),
        tech,
    )
    spec = DelaySpec(data=IMPOSSIBLE_PS)
    result = benchmark(lambda: screen_feasibility(circuit, library, spec))
    assert result.infeasible
