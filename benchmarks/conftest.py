"""Shared fixtures and table rendering for the paper-reproduction benches.

Every benchmark module regenerates one table or figure of the paper.  The
convention: a module-scoped fixture computes the experiment once, the test
functions assert the paper's *shape* (who wins, roughly by how much, where
crossovers fall), and one ``test_bench_*`` function times the core kernel so
``pytest benchmarks/ --benchmark-only`` doubles as a performance harness.
"""

import json
import os
import time

import pytest

from repro.macros import default_database
from repro.models import ModelLibrary, Technology
from repro.obs import metrics as obs_metrics

#: Machine-readable copies of every printed table land here (one JSON file
#: per table), so downstream tooling can diff reproduction runs.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Session epoch for the wall-time stamp each result file carries.
_SESSION_T0 = time.perf_counter()


def _obs_stamp():
    """Convergence-cost metadata stamped into every result JSON.

    Pulled from the process-global metrics registry the engine/GP/STA
    instrumentation feeds, so ``BENCH_*.json`` trajectories can track how
    much work (refinement iterations, GP solves, STA node visits) and
    wall-time each reproduction table cost across PRs.  Counters are
    cumulative across the session; per-table deltas are recoverable by
    diffing consecutive stamps.
    """
    reg = obs_metrics.registry()
    runtime = reg.histograms.get("engine.runtime_s")
    return {
        "wall_time_s": round(time.perf_counter() - _SESSION_T0, 3),
        "engine_iterations": reg.counter("engine.iterations").value,
        "gp_solves": reg.counter("gp.solves").value,
        "gp_fallbacks": reg.counter("engine.gp_fallbacks").value,
        "sta_analyses": reg.counter("sta.analyses").value,
        "sta_node_visits": reg.counter("sta.node_visits").value,
        "sizing_runs": runtime.count if runtime else 0,
        "sizing_runtime_s": round(runtime.total, 3) if runtime else 0.0,
    }


@pytest.fixture(scope="session")
def tech():
    return Technology()


@pytest.fixture(scope="session")
def library(tech):
    return ModelLibrary(tech)


@pytest.fixture(scope="session")
def database():
    return default_database()


def _slugify(title: str) -> str:
    keep = []
    for ch in title.lower():
        if ch.isalnum():
            keep.append(ch)
        elif keep and keep[-1] != "_":
            keep.append("_")
    return "".join(keep).strip("_")[:80]


def render_table(title, headers, rows):
    """Print a paper-style table into the pytest -s / benchmark output and
    drop a JSON copy under ``benchmarks/results/``."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [[str(c) for c in row] for row in rows],
        "obs": _obs_stamp(),
    }
    path = os.path.join(RESULTS_DIR, f"{_slugify(title)}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return text


def pct(x):
    return f"{x:.1%}"


def norm(x):
    return f"{x:.3f}"
