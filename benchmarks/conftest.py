"""Shared fixtures and table rendering for the paper-reproduction benches.

Every benchmark module regenerates one table or figure of the paper.  The
convention: a module-scoped fixture computes the experiment once, the test
functions assert the paper's *shape* (who wins, roughly by how much, where
crossovers fall), and one ``test_bench_*`` function times the core kernel so
``pytest benchmarks/ --benchmark-only`` doubles as a performance harness.
"""

import json
import os
import time

import pytest

from repro.macros import default_database
from repro.models import ModelLibrary, Technology
from repro.obs import metrics as obs_metrics
from repro.obs import perf as obs_perf

#: Machine-readable copies of every printed table land here (one JSON file
#: per table), so downstream tooling can diff reproduction runs.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Session epoch for the wall-time stamp each result file carries.
_SESSION_T0 = time.perf_counter()

#: The hot kernels the CI perf gate tracks across PRs.
TRACKED_KERNELS = (
    "test_bench_sizing_kernel",
    "test_bench_adder_sizing",
    "test_bench_per_bit_sizing",
    "test_bench_collapsed_sizing",
)

#: Wall-time samples per ``test_bench_*`` kernel, filled by the autouse
#: timer fixture and flushed to ``BENCH_PR10.json`` at session end.
_BENCH_TIMES: dict = {}

#: Free-form headline numbers benchmark modules contribute to the
#: trajectory stamp via the ``bench_extra`` fixture (e.g. the
#: collapsed-vs-full speedup and certificate-check wall time).
_BENCH_EXTRA: dict = {}

#: Digest of the session run ledger, captured when the ledger fixture
#: tears down (before ``pytest_sessionfinish`` runs).
_BENCH_LEDGER: dict = {}


def _obs_stamp():
    """Convergence-cost metadata stamped into every result JSON.

    Pulled from the process-global metrics registry the engine/GP/STA
    instrumentation feeds, so ``BENCH_*.json`` trajectories can track how
    much work (refinement iterations, GP solves, STA node visits) and
    wall-time each reproduction table cost across PRs.  Counters are
    cumulative across the session; per-table deltas are recoverable by
    diffing consecutive stamps.
    """
    reg = obs_metrics.registry()
    runtime = reg.histograms.get("engine.runtime_s")
    return {
        "wall_time_s": round(time.perf_counter() - _SESSION_T0, 3),
        "engine_iterations": reg.counter("engine.iterations").value,
        "gp_solves": reg.counter("gp.solves").value,
        "gp_fallbacks": reg.counter("engine.gp_fallbacks").value,
        "sta_analyses": reg.counter("sta.analyses").value,
        "sta_node_visits": reg.counter("sta.node_visits").value,
        "sizing_runs": runtime.count if runtime else 0,
        "sizing_runtime_s": round(runtime.total, 3) if runtime else 0.0,
    }


@pytest.fixture(scope="session", autouse=True)
def _bench_run_ledger():
    """Record every sizing/advise run of the bench session in a ledger.

    The ledger stays in memory; only its digest lands in the trajectory
    stamp, tying each ``BENCH_PR*.json`` to the exact set of runs (and
    their fingerprints) that produced it.
    """
    ledger = obs_perf.RunLedger()
    previous = obs_perf.get_ledger()
    obs_perf.install_ledger(ledger)
    try:
        yield ledger
    finally:
        obs_perf.install_ledger(previous)
        _BENCH_LEDGER["digest"] = ledger.digest() if len(ledger) else None
        _BENCH_LEDGER["runs"] = len(ledger)


@pytest.fixture(autouse=True)
def _bench_kernel_timer(request):
    """Time every ``test_bench_*`` kernel for the trajectory stamp."""
    name = request.node.name
    if not name.startswith("test_bench_"):
        yield
        return
    t0 = time.perf_counter()
    yield
    _BENCH_TIMES.setdefault(name, []).append(time.perf_counter() - t0)


@pytest.fixture(scope="session")
def bench_extra():
    """Mutable mapping for headline numbers stamped into the trajectory.

    Benchmark modules write named scalars here (collapsed-vs-full
    speedup, certificate-check wall time, ...); they land under the
    ``extra`` key of ``BENCH_PR10.json`` at session end.
    """
    return _BENCH_EXTRA


def pytest_sessionfinish(session, exitstatus):
    """Flush the per-kernel wall times as a ``BENCH_PR10.json`` trajectory.

    The committed copy under ``benchmarks/results/`` is the baseline the
    CI ``perf-smoke`` job diffs fresh runs against (``repro perf diff``).
    The stamp is written unconditionally — a run that collected no
    ``test_bench_*`` kernels (``-k`` selection, collection error) leaves an
    honest empty trajectory, which ``perf diff`` treats as "no baseline"
    (exit 0) rather than a hard usage error.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = obs_perf.make_trajectory(
        _BENCH_TIMES,
        pr=10,
        ledger_digest=_BENCH_LEDGER.get("digest"),
        tracked=[k for k in TRACKED_KERNELS if k in _BENCH_TIMES],
    )
    payload["ledger_runs"] = _BENCH_LEDGER.get("runs", 0)
    if _BENCH_EXTRA:
        payload["extra"] = dict(_BENCH_EXTRA)
    with open(os.path.join(RESULTS_DIR, "BENCH_PR10.json"), "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


@pytest.fixture(scope="session")
def tech():
    return Technology()


@pytest.fixture(scope="session")
def library(tech):
    return ModelLibrary(tech)


@pytest.fixture(scope="session")
def database():
    return default_database()


def _slugify(title: str) -> str:
    keep = []
    for ch in title.lower():
        if ch.isalnum():
            keep.append(ch)
        elif keep and keep[-1] != "_":
            keep.append("_")
    return "".join(keep).strip("_")[:80]


def render_table(title, headers, rows):
    """Print a paper-style table into the pytest -s / benchmark output and
    drop a JSON copy under ``benchmarks/results/``."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "title": title,
        "headers": list(headers),
        "rows": [[str(c) for c in row] for row in rows],
        "obs": _obs_stamp(),
    }
    path = os.path.join(RESULTS_DIR, f"{_slugify(title)}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
    return text


def pct(x):
    return f"{x:.1%}"


def norm(x):
    return f"{x:.3f}"
