"""Figure 5(c): normalized transistor width, original vs SMART, decoders.

Paper instances: 3to8, 3to8, 4to16, 4to16, 4to16, 6to64, 6to64, 7to128.
Repeats are rendered as different topologies/loads, as a design team would
actually have instantiated them.
"""

import pytest

from conftest import norm, pct, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec

INSTANCES = [
    ("3to8", "decoder/flat_static", 3, 20.0, "area"),
    ("3to8#2", "decoder/domino", 3, 20.0, "area+clock"),
    ("4to16", "decoder/flat_static", 4, 15.0, "area"),
    ("4to16#2", "decoder/predecoded", 4, 20.0, "area"),
    ("4to16#3", "decoder/domino", 4, 25.0, "area+clock"),
    ("6to64", "decoder/predecoded", 6, 15.0, "area"),
    ("6to64#2", "decoder/flat_static", 6, 15.0, "area"),
    ("7to128", "decoder/predecoded", 7, 15.0, "area"),
]


@pytest.fixture(scope="module")
def results(database, library):
    out = {}
    for label, topology, width, load, objective in INSTANCES:
        spec = MacroSpec("decoder", width, output_load=load)
        out[label] = macro_savings(
            database, topology, spec, library, objective=objective
        )
    return out


def test_figure_5c_table(results):
    rows = [
        (label, norm(1.0), norm(r.normalized_width), pct(r.width_saving),
         "yes" if r.timing_met else "NO")
        for label, r in results.items()
    ]
    render_table(
        "Figure 5(c): decoders — normalized total transistor width",
        ("circuit", "original", "SMART", "saving", "timing met"),
        rows,
    )


def test_all_meet_timing(results):
    for label, r in results.items():
        assert r.timing_met, label


def test_all_save_width(results):
    for label, r in results.items():
        assert r.width_saving > 0.05, (label, r.width_saving)


def test_bench_decoder_kernel(benchmark, database, library):
    spec = MacroSpec("decoder", 4, output_load=20.0)

    def kernel():
        return macro_savings(database, "decoder/flat_static", spec, library)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
