"""Figure 7: 32-bit two-phase (D1-D2) domino comparator exploration.

The paper's experiment, in three moves:

1. the original ("Merced") topology — D1: Xorsum2 + Nand2, D2: Nor4 + Nand2 —
   is *re-sized* by SMART at unchanged delay: area 1.00 -> 0.90, clock
   1.00 -> 0.68 (the quoted 31% clock reduction "without sacrificing
   performance");
2. two alternative topologies (Xorsum1/Nor8, Xorsum4/Nor4+INV) are explored
   at the same constraints;
3. the original topology remains the best choice at these constraints.

We reproduce all three moves with the over-design baseline standing in for
the hand-sized original.
"""

import pytest

from conftest import norm, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec
from repro.sizing import SmartSizer
from repro.sizing.engine import (
    measure_class_delays,
    measure_slopes,
    spec_from_measurement,
)

TOPOLOGIES = ("comparator/xorsum2", "comparator/xorsum1", "comparator/xorsum4")
SPEC = MacroSpec("comparator", 32, output_load=20.0)


@pytest.fixture(scope="module")
def resize_result(database, library):
    """Move 1: SMART re-sizing of the original topology."""
    return macro_savings(
        database, "comparator/xorsum2", SPEC, library, objective="area+clock"
    )


@pytest.fixture(scope="module")
def exploration(database, library, resize_result):
    """Moves 2-3: all topologies sized at the original's constraints."""
    baseline = resize_result.baseline
    original = database.generate("comparator/xorsum2", SPEC, library.tech)
    classes = measure_class_delays(original, library, baseline.widths)
    out_slope, int_slope = measure_slopes(original, library, baseline.widths)
    spec = spec_from_measurement(
        classes,
        slack=1.05,
        max_output_slope=max(150.0, out_slope * 1.05),
        max_internal_slope=max(350.0, int_slope * 1.05),
    )
    results = {}
    for topology in TOPOLOGIES:
        circuit = database.generate(topology, SPEC, library.tech)
        sizer = SmartSizer(circuit, library, objective="area+clock")
        try:
            results[topology] = sizer.size(spec)
        except Exception:
            results[topology] = None
    return results


def test_figure7_table(resize_result, exploration):
    base = resize_result.baseline
    rows = [
        ("original (overdesigned)", norm(1.0), norm(1.0), "-"),
        (
            "SMART resize (same topology)",
            norm(resize_result.smart.area / base.area),
            norm(resize_result.smart.clock_load / base.clock_load),
            "yes" if resize_result.timing_met else "NO",
        ),
    ]
    for topology, result in exploration.items():
        if result is None:
            rows.append((f"SMART {topology}", "infeasible", "-", "-"))
            continue
        rows.append(
            (
                f"SMART {topology}",
                norm(result.area / base.area),
                norm(result.clock_load / base.clock_load),
                "yes" if result.converged else "NO",
            )
        )
    render_table(
        "Figure 7: 32-bit comparator — normalized area / clock at equal delay",
        ("design", "area", "clock", "timing met"),
        rows,
    )


def test_resize_saves_clock_without_performance_loss(resize_result):
    """Paper: resizing alone cut clock 32% (area 0.90) at unchanged delay."""
    assert resize_result.timing_met
    assert resize_result.clock_saving > 0.10
    assert resize_result.width_saving > 0.0


def test_alternatives_converge(exploration):
    converged = [r for r in exploration.values() if r is not None and r.converged]
    assert len(converged) >= 2


def test_original_topology_competitive(exploration):
    """Paper: "the original topology performed better than the other
    alternatives ... [but] under different design constraints, the original
    topology may not be the optimal one."  Our synthetic technology and
    baseline land at such different constraints: the exploration must show
    the original beating the fine-grained xorsum1 variant clearly and
    staying within 1.5x of the overall winner (which here is the coarse
    xorsum4 lumping — see EXPERIMENTS.md for the deviation note)."""
    costs = {
        topo: (r.area + r.clock_load)
        for topo, r in exploration.items()
        if r is not None and r.converged
    }
    assert "comparator/xorsum2" in costs
    best = min(costs.values())
    assert costs["comparator/xorsum2"] <= best * 1.5, costs
    if "comparator/xorsum1" in costs:
        assert costs["comparator/xorsum2"] < costs["comparator/xorsum1"], costs


def test_bench_comparator_exploration(benchmark, database, library):
    def kernel():
        return macro_savings(
            database, "comparator/xorsum2", SPEC, library, objective="area+clock"
        )

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
