"""Extension corpus: the macro families the paper lists but does not
evaluate — shifters and register files ("muxes, shifters, adders,
comparators, decoders, encoders, zero-detects, register files etc.").

The Section-6.1 protocol applied to both families, completing the database's
coverage of the paper's macro list.
"""

import pytest

from conftest import norm, pct, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec

INSTANCES = [
    ("8b barrel rotator", "shifter/passgate_barrel",
     MacroSpec("shifter", 8, output_load=20.0), "area"),
    ("16b barrel rotator", "shifter/passgate_barrel",
     MacroSpec("shifter", 16, output_load=20.0), "area"),
    ("16b tristate rotator", "shifter/tristate_barrel",
     MacroSpec("shifter", 16, output_load=20.0), "area"),
    ("8x8 RF read (domino)", "register_file/domino_bitline",
     MacroSpec("register_file", 8, output_load=20.0,
               params=(("registers", 8),)), "area+clock"),
    ("16x4 RF read (domino)", "register_file/domino_bitline",
     MacroSpec("register_file", 4, output_load=20.0,
               params=(("registers", 16),)), "area+clock"),
    ("8:3 encoder (static)", "encoder/static_tree",
     MacroSpec("encoder", 3, output_load=20.0), "area"),
    ("16:4 encoder (domino)", "encoder/domino",
     MacroSpec("encoder", 4, output_load=20.0), "area+clock"),
]


@pytest.fixture(scope="module")
def results(database, library):
    out = {}
    for label, topology, spec, objective in INSTANCES:
        out[label] = macro_savings(
            database, topology, spec, library, objective=objective
        )
    return out


def test_extension_table(results):
    rows = [
        (label, norm(r.normalized_width), pct(r.width_saving),
         pct(r.clock_saving) if r.baseline.clock_load > 0 else "n/a",
         "yes" if r.timing_met else "NO")
        for label, r in results.items()
    ]
    render_table(
        "Extension corpus: shifters and register-file read ports",
        ("macro", "SMART/original", "width saving", "clock saving", "timing met"),
        rows,
    )


def test_all_meet_timing(results):
    for label, r in results.items():
        assert r.timing_met, label


def test_all_save_width(results):
    for label, r in results.items():
        assert r.width_saving > 0.03, (label, r.width_saving)


def test_domino_read_ports_save_clock(results):
    for label in (
        "8x8 RF read (domino)", "16x4 RF read (domino)", "16:4 encoder (domino)"
    ):
        assert results[label].clock_saving > 0.0, label


def test_bench_extension_kernel(benchmark, database, library):
    spec = MacroSpec("shifter", 8, output_load=20.0)

    def kernel():
        return macro_savings(database, "shifter/passgate_barrel", spec, library)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
