"""Figure 5(b): normalized transistor width, original vs SMART, zero-detects.

Paper instances: 6bit, 8bit, 8bit, 16bit, 16bit, 22bit, 32bit, 63bit — a mix
of topologies across repeats, which we render as static trees and (split)
domino variants.
"""

import pytest

from conftest import norm, pct, render_table
from repro.core.savings import macro_savings
from repro.macros import MacroSpec

INSTANCES = [
    ("6bit", "zero_detect/static_tree", 6, 15.0, "area"),
    ("8bit", "zero_detect/static_tree", 8, 20.0, "area"),
    ("8bit#2", "zero_detect/domino", 8, 20.0, "area+clock"),
    ("16bit", "zero_detect/static_tree", 16, 20.0, "area"),
    ("16bit#2", "zero_detect/domino", 16, 25.0, "area+clock"),
    ("22bit", "zero_detect/split_domino", 22, 20.0, "area+clock"),
    ("32bit", "zero_detect/domino", 32, 30.0, "area+clock"),
    ("63bit", "zero_detect/split_domino", 63, 25.0, "area+clock"),
]


@pytest.fixture(scope="module")
def results(database, library):
    out = {}
    for label, topology, width, load, objective in INSTANCES:
        spec = MacroSpec("zero_detect", width, output_load=load)
        out[label] = macro_savings(
            database, topology, spec, library, objective=objective
        )
    return out


def test_figure_5b_table(results):
    rows = [
        (label, norm(1.0), norm(r.normalized_width), pct(r.width_saving),
         "yes" if r.timing_met else "NO")
        for label, r in results.items()
    ]
    render_table(
        "Figure 5(b): zero detects — normalized total transistor width",
        ("circuit", "original", "SMART", "saving", "timing met"),
        rows,
    )


def test_all_meet_timing(results):
    for label, r in results.items():
        assert r.timing_met, label


def test_all_save_width(results):
    for label, r in results.items():
        assert r.width_saving > 0.05, (label, r.width_saving)


def test_domino_instances_save_clock(results):
    for label in ("8bit#2", "16bit#2", "22bit", "32bit", "63bit"):
        assert results[label].clock_saving > 0.0, label


def test_bench_zero_detect_kernel(benchmark, database, library):
    spec = MacroSpec("zero_detect", 16, output_load=20.0)

    def kernel():
        return macro_savings(database, "zero_detect/static_tree", spec, library)

    result = benchmark.pedantic(kernel, rounds=1, iterations=1)
    assert result.timing_met
