#!/usr/bin/env python
"""Noise-aware domino design: charge-sharing constraints and keepers.

Section 5 lists *noise* among the constraint classes SMART generates, and
Section 2 gives the designer a manual override: "to allow the designer to
improve the noise immunity of the circuit based on the local operating
conditions".  This example sizes an 8:1 domino mux three ways —

  1. timing-only (the hazard: worst-case charge sharing droops the node),
  2. with a GP charge-sharing constraint (SMART grows the precharge),
  3. with a designer keeper retrofit plus the same constraint (the keeper's
     credit lets precharge stay lean at a small evaluate-contention cost),

then *verifies* each with the switch-level simulator's worst-case sharing
event, exactly how a noise review would.

Run:  python examples/noise_aware_domino.py
"""

from repro import MacroSpec, SmartAdvisor
from repro.core.editing import add_keeper
from repro.sim import TransientSimulator, clock, constant, step
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay

WIDTH = 8


def worst_case_droop(circuit, widths, tech) -> float:
    """Precharge, then evaluate with the selected leg's data low: the
    internal chain charge-shares against the node."""
    devices = circuit.expand_transistors(widths)
    extra = {n.name: n.fixed_cap for n in circuit.nets.values() if n.fixed_cap > 0}
    sim = TransientSimulator(devices, tech, extra_caps=extra)
    stim = {"clk": clock(tech.vdd, period=2400.0, cycles=1, start_low=1200.0)}
    # The hazard needs the leg's internal node pre-discharged: the select
    # rises only at evaluate (a constant-on select would precharge it).
    for i in range(WIDTH):
        stim[f"s{i}"] = (
            step(tech.vdd, at=1230.0, rise=15.0) if i == 0 else constant(0.0)
        )
        stim[f"in{i}"] = constant(0.0)
    result = sim.run(stim, duration=2400.0, dt=2.0)
    window = result.v("dyn")[int(1300 / 2):int(2350 / 2)]
    return float(window.min()), float(window[-1])


def main() -> None:
    advisor = SmartAdvisor()
    tech, library = advisor.tech, advisor.library
    spec = MacroSpec("mux", WIDTH, output_load=30.0)

    def build():
        return advisor.database.generate("mux/unsplit_domino", spec, tech)

    budget = 0.9 * nominal_delay(build(), library)
    print(f"8:1 un-split domino mux, delay budget {budget:.0f} ps\n")
    header = (f"{'design':<34} {'area um':>8} {'P1/N1':>7} "
              f"{'node Vmin':>10} {'V end-eval':>11}")
    print(header)
    print("-" * len(header))

    # 1. timing-only
    plain = build()
    r1 = SmartSizer(plain, library).size(DelaySpec(data=budget))
    v1, e1 = worst_case_droop(plain, r1.resolved, tech)
    print(f"{'timing-only':<34} {r1.area:>8.1f} "
          f"{r1.resolved['P1'] / r1.resolved['N1']:>7.2f} {v1:>9.2f}V {e1:>10.2f}V")

    # 2. charge-sharing constraint in the GP
    guarded = build()
    r2 = SmartSizer(guarded, library).size(
        DelaySpec(data=budget, charge_sharing_ratio=0.8)
    )
    v2, e2 = worst_case_droop(guarded, r2.resolved, tech)
    print(f"{'+ charge-sharing constraint':<34} {r2.area:>8.1f} "
          f"{r2.resolved['P1'] / r2.resolved['N1']:>7.2f} {v2:>9.2f}V {e2:>10.2f}V")

    # 3. designer keeper + constraint (keeper credit)
    kept = build()
    add_keeper(kept, "dom", ratio=0.15)
    r3 = SmartSizer(kept, library).size(
        DelaySpec(data=budget, charge_sharing_ratio=0.8)
    )
    v3, e3 = worst_case_droop(kept, r3.resolved, tech)
    print(f"{'+ keeper (0.15x) + constraint':<34} {r3.area:>8.1f} "
          f"{r3.resolved['P1'] / r3.resolved['N1']:>7.2f} {v3:>9.2f}V {e3:>10.2f}V")

    print(f"\nall met timing: {r1.converged and r2.converged and r3.converged}")
    print("higher node Vmin = more noise margin during the sharing event;")
    print("the keeper also restores the node by the end of evaluate")


if __name__ == "__main__":
    main()
