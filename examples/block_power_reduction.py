#!/usr/bin/env python
"""The Section-6.4 flow end to end: apply SMART to the macros of a
functional block and report block-level power savings with no performance
penalty.

Run:  python examples/block_power_reduction.py
"""

from repro.blocks import MacroInstanceSpec, build_block, reduce_block_power
from repro.macros import MacroSpec
from repro.models import ModelLibrary


def main() -> None:
    library = ModelLibrary()

    # A bypass-style block: domino and pass-gate muxes plus a zero detect,
    # embedded in random control logic so macros are ~35% of total width.
    menu = [
        MacroInstanceSpec(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), count=3
        ),
        MacroInstanceSpec(
            "mux/strong_mutex_passgate", MacroSpec("mux", 6, output_load=40.0),
            count=4,
        ),
        MacroInstanceSpec(
            "zero_detect/domino", MacroSpec("zero_detect", 16), count=2
        ),
    ]
    block = build_block(
        "bypass_blk", menu, macro_width_fraction=0.35, library=library, seed=42
    )

    print(f"block: {block.name}")
    print(f"  transistors          : {block.transistor_count()}")
    print(f"  macro width fraction : {block.macro_width_fraction:.1%}")
    print(f"  macro power fraction : {block.macro_power_fraction():.1%}")
    print(f"  total power          : {block.total_power():.0f} uW\n")

    result = reduce_block_power(block)

    print("per-macro reductions:")
    for macro in result.macros:
        print(
            f"  {macro.name:<16} {macro.topology:<28} "
            f"power {macro.power_before:7.1f} -> {macro.power_after:7.1f} uW "
            f"({macro.power_saving:6.1%})  "
            f"delay {macro.delay_before:6.1f} -> {macro.delay_after:6.1f} ps"
        )

    print(f"\nblock power saving : {result.power_saving:.1%}")
    print(f"block width saving : {result.width_saving:.1%}")
    print(
        "performance        : "
        + ("no penalty" if result.no_performance_penalty else "PENALTY!")
    )

    # The whole block also exists as one netlist: validate and export it.
    from repro.netlist import export_circuit, validate_circuit

    merged = block.merged_circuit()
    validate_circuit(merged).raise_if_failed()
    deck = export_circuit(merged, block.merged_widths())
    print(f"\nmerged netlist     : {merged.transistor_count()} transistors, "
          f"{len(deck.splitlines())} SPICE lines (first 3 below)")
    print("\n".join(deck.splitlines()[:3]))


if __name__ == "__main__":
    main()
