#!/usr/bin/env python
"""Designer-side workflows: extending the database and editing a macro.

Two things the paper insists a macro methodology must support (Sections 2
and 4):

1. *expandability* — "whenever a designer comes up with an implementation
   not available in the database, it can be incorporated";
2. *editing* — "a few structural changes to the schematic (e.g., merging in
   of a few gates of condition logic) may have to be performed to match
   RTL", plus designer control of individual transistor sizes.

Here a designer adds a buffered strongly-mutexed mux (extra output stage for
long wires), registers it, then edits an instance: a select input becomes
the NAND of two control signals, and the output driver PMOS is pinned up for
a noisy neighborhood.

Run:  python examples/custom_macro_and_editing.py
"""

from repro import DesignConstraints, MacroSpec, SmartAdvisor
from repro.core.editing import merge_condition_gate, pin_sizes
from repro.macros import MacroSpec as Spec
from repro.macros.mux import StrongMutexPassgateMux
from repro.models import Technology
from repro.netlist import validate_circuit


class BufferedStrongMutexMux(StrongMutexPassgateMux):
    """Figure 2(a) plus a second output inverter for long-wire instances."""

    name = "mux/strong_mutex_buffered"
    description = "strongly mutexed pass-gate mux with buffered output"

    def build(self, spec, tech: Technology):
        circuit = super().build(spec, tech)
        # Re-plumb: the original outdrv now feeds a second stage.
        out = circuit.net("out")
        mid = circuit.add_net("outpre")
        outdrv = circuit.stage("outdrv")
        outdrv.output = mid
        circuit._drivers.pop("out")
        circuit._all_drivers.pop("out")
        circuit._drivers["outpre"] = outdrv
        circuit._all_drivers["outpre"] = [outdrv]
        circuit._fanout.setdefault("outpre", [])
        circuit.size_table.declare("P5")
        circuit.size_table.declare("N5")
        from repro.netlist import Pin, Stage, StageKind

        circuit.add_stage(
            Stage(
                name="outbuf",
                kind=StageKind.INV,
                inputs=[Pin("a", mid)],
                output=out,
                size_vars={"pull_up": "P5", "pull_down": "N5"},
            )
        )
        return circuit


def main() -> None:
    advisor = SmartAdvisor()
    advisor.database.register(BufferedStrongMutexMux())

    spec = MacroSpec("mux", 4, output_load=180.0)  # long-wire instance
    constraints = DesignConstraints(delay=520.0, cost="area")

    report = advisor.advise(
        spec,
        constraints,
        topologies=["mux/strong_mutex_passgate", "mux/strong_mutex_buffered"],
    )
    print(report.render())

    # --- editing an instance ------------------------------------------------
    circuit = advisor.database.generate(
        "mux/strong_mutex_buffered", spec, advisor.tech
    )
    # RTL says input 0 is selected only when (sel0 AND enable).
    merge_condition_gate(circuit, "s0", "nand", ["sel0_n", "enable_n"], "PC", "NC")
    # Noisy neighborhood: the designer wants at least 60 um of output PMOS.
    pin_sizes(circuit, {"P5": 60.0})
    validate_circuit(circuit).raise_if_failed()

    from repro.sizing import SmartSizer

    result = SmartSizer(circuit, advisor.library).size(constraints.to_delay_spec())
    print("\nedited instance after sizing:")
    print(f"  converged        : {result.converged}")
    print(f"  total width      : {result.area:.1f} um")
    print(f"  pinned P5        : {result.resolved['P5']:.1f} um (designer)")
    print(f"  condition gate PC: {result.resolved['PC']:.2f} um (sizer)")


if __name__ == "__main__":
    main()
