#!/usr/bin/env python
"""Quickstart: ask SMART for an 8:1 mux meeting a delay budget.

The Figure-1 flow in five lines: spec -> topology choices -> automated
sizing -> comparison -> the designer picks (or takes the recommendation).

Run:  python examples/quickstart.py
"""

from repro import DesignConstraints, MacroSpec, SmartAdvisor
from repro.netlist import export_circuit


def main() -> None:
    advisor = SmartAdvisor()

    # The macro instance and its local constraints, as a designer would
    # state them: an 8-input mux driving 40 fF, worst pin-to-out 420 ps,
    # minimize total transistor width.
    spec = MacroSpec("mux", width=8, output_load=40.0)
    constraints = DesignConstraints(delay=420.0, cost="area")

    report = advisor.advise(spec, constraints)
    print(report.render())

    best = report.best
    if best is None:
        raise SystemExit("no topology meets the constraints - loosen the budget")

    # Re-size the winner (the advisor already did; this shows the API) and
    # export a SPICE deck for the downstream layout/verification flow.
    circuit, sizing = advisor.size_topology(best.topology, spec, constraints)
    print(f"\nchosen topology : {best.topology}")
    print(f"total width     : {sizing.area:.1f} um")
    print(f"clock load      : {sizing.clock_load:.1f} um")
    print(f"sizer iterations: {sizing.iterations}")
    print("\nlabel widths (um):")
    for label in sorted(sizing.resolved):
        print(f"  {label:<8} {sizing.resolved[label]:7.2f}")

    deck = export_circuit(circuit, sizing.resolved)
    print("\nSPICE deck (first 12 lines):")
    print("\n".join(deck.splitlines()[:12]))


if __name__ == "__main__":
    main()
