#!/usr/bin/env python
"""Regenerate the Figure-6 experiment: the 64-bit dual-rail domino CLA
adder's area-delay trade-off curve, with an ASCII rendering.

Run:  python examples/adder_tradeoff.py  [--width 32]
"""

import argparse

from repro import DesignConstraints, MacroSpec, SmartAdvisor, area_delay_curve
from repro.sizing.engine import nominal_delay

TOPOLOGY = "adder/dual_rail_domino_cla"
SCALES = (0.96, 1.0, 1.074, 1.17, 1.27)


def ascii_plot(points, width=52, height=12) -> str:
    xs = [p.spec_delay for p in points]
    ys = [p.area for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
        row = int((y - y0) / (y1 - y0 + 1e-12) * (height - 1))
        grid[height - 1 - row][col] = "*"
    lines = ["area"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width + "> delay")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=64,
                        help="adder width (multiple of 16)")
    args = parser.parse_args()

    advisor = SmartAdvisor()
    spec = MacroSpec("adder", args.width, output_load=20.0)
    circuit = advisor.database.generate(TOPOLOGY, spec, advisor.tech)
    anchor = 0.40 * nominal_delay(circuit, advisor.library)
    base = DesignConstraints(delay=anchor)

    print(f"{args.width}-bit dual-rail domino CLA "
          f"({circuit.transistor_count()} transistors, "
          f"{len(circuit.size_table.free_names())} size labels)")
    print(f"sweeping delay budgets around {anchor:.0f} ps ...\n")

    curve = area_delay_curve(advisor, TOPOLOGY, spec, base, scales=SCALES)
    normalized = curve.normalized(reference_scale=max(SCALES))

    print(f"{'budget (ps)':>12} {'norm delay':>11} {'norm area':>10} {'ok':>4}")
    for p, n in zip(
        sorted(curve.points, key=lambda p: -p.spec_delay),
        sorted(normalized.points, key=lambda p: -p.spec_delay),
    ):
        print(f"{p.spec_delay:>12.0f} {n.spec_delay:>11.3f} "
              f"{n.area:>10.3f} {'yes' if p.converged else 'NO':>4}")

    converged = [p for p in curve.points if p.converged]
    if len(converged) >= 2:
        print("\n" + ascii_plot(converged))


if __name__ == "__main__":
    main()
