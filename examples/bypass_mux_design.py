#!/usr/bin/env python
"""Bypass-network mux selection — the paper's motivating datapath scenario.

An execution-unit bypass network instantiates the same logical mux in very
different electrical contexts: a local operand select drives a short wire
into one consumer; a cross-datapath bypass drives a long interconnect.
Section 4 notes the tri-state topology "is used when the load to be driven is
very large or when the input signals travel over long inter-connects"; domino
topologies buy speed at clock-power cost.  This example runs the advisor at
three operating points and shows how the recommendation moves.

Run:  python examples/bypass_mux_design.py
"""

from repro import DesignConstraints, MacroSpec, SmartAdvisor

SCENARIOS = [
    (
        "local operand select (light load, relaxed)",
        MacroSpec("mux", 4, output_load=15.0),
        DesignConstraints(delay=420.0, cost="area"),
    ),
    (
        "cross-datapath bypass (very large load)",
        MacroSpec("mux", 4, output_load=250.0),
        DesignConstraints(delay=520.0, cost="area"),
    ),
    (
        "critical bypass leg (tight delay, clock power matters)",
        MacroSpec("mux", 8, output_load=40.0),
        DesignConstraints(delay=300.0, cost="area+clock"),
    ),
]


def main() -> None:
    advisor = SmartAdvisor()
    for title, spec, constraints in SCENARIOS:
        print(f"\n##### {title}")
        print(
            f"  width={spec.width}, load={spec.output_load:.0f} fF, "
            f"delay<={constraints.delay:.0f} ps, cost={constraints.cost}"
        )
        report = advisor.advise(spec, constraints)
        print(report.render())
        if report.best is not None:
            sizing = report.best.sizing
            print(
                f"  -> recommended {report.best.topology}: "
                f"{sizing.area:.0f} um width, "
                f"{sizing.clock_load:.0f} um clock load"
            )
        else:
            print("  -> nothing meets this point; the designer must "
                  "renegotiate the budget or innovate a topology")


if __name__ == "__main__":
    main()
