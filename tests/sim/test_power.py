"""Power estimator (PowerMill substitute) tests."""

import pytest

from repro.sim.power import CLOCK_ACTIVITY, DOMINO_ACTIVITY, PowerEstimator


WIDTHS = {"P0": 2.0, "N0": 1.0, "P1": 4.0, "N1": 2.0, "P2": 8.0, "N2": 4.0}


class TestStatic:
    def test_total_positive(self, inverter_chain, library):
        report = PowerEstimator(inverter_chain, library).estimate(WIDTHS)
        assert report.total > 0
        assert report.clock == 0.0
        assert report.signal == report.total

    def test_power_scales_with_width(self, inverter_chain, library):
        est = PowerEstimator(inverter_chain, library)
        small = est.estimate(WIDTHS).total
        big = est.estimate({k: 4 * v for k, v in WIDTHS.items()}).total
        assert big > 2.0 * small

    def test_by_net_sums_to_total(self, inverter_chain, library):
        report = PowerEstimator(inverter_chain, library).estimate(WIDTHS)
        assert sum(report.by_net.values()) == pytest.approx(report.total)

    def test_activity_override(self, inverter_chain, library):
        est = PowerEstimator(inverter_chain, library)
        base = est.estimate(WIDTHS).by_net["n1"]
        doubled = est.estimate(
            WIDTHS, activity_overrides={"n1": 2 * library.tech.activity}
        ).by_net["n1"]
        assert doubled == pytest.approx(2 * base)

    def test_fraction_of(self, inverter_chain, library):
        report = PowerEstimator(inverter_chain, library).estimate(WIDTHS)
        assert report.fraction_of(report.by_net) == pytest.approx(1.0)
        assert report.fraction_of([]) == 0.0


class TestDomino:
    def test_clock_component_positive(self, domino_mux, library):
        env = domino_mux.size_table.default_env()
        report = PowerEstimator(domino_mux, library).estimate(env)
        assert report.clock > 0
        assert report.signal > 0

    def test_domino_activity_higher_than_static(self, domino_mux, library):
        est = PowerEstimator(domino_mux, library)
        assert est.net_activity("dyn") == DOMINO_ACTIVITY
        assert est.net_activity("in0") == library.tech.activity

    def test_clock_activity(self, domino_mux, library):
        est = PowerEstimator(domino_mux, library)
        assert est.net_activity("clk") == CLOCK_ACTIVITY

    def test_domino_fanout_inherits_activity(self, domino_mux, library):
        est = PowerEstimator(domino_mux, library)
        # "out" is driven by the inverter fed from the dynamic node.
        assert est.net_activity("out") == DOMINO_ACTIVITY

    def test_net_capacitance_includes_wire(self, domino_mux, library):
        est = PowerEstimator(domino_mux, library)
        env = domino_mux.size_table.default_env()
        caps = est.net_capacitance(env)
        assert caps["dyn"] > domino_mux.net("dyn").wire_cap
