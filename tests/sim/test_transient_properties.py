"""Property-based tests for the switch-level transient simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import Technology
from repro.netlist import Polarity, Transistor
from repro.sim import TransientSimulator, constant, step

TECH = Technology()
VDD = TECH.vdd


def _inverter(wp, wn):
    return [
        Transistor("mp", Polarity.PMOS, "out", "in", "vdd", "vdd", wp),
        Transistor("mn", Polarity.NMOS, "out", "in", "vss", "vss", wn),
    ]


widths = st.floats(min_value=0.5, max_value=30.0)
loads = st.floats(min_value=1.0, max_value=100.0)


@settings(max_examples=15, deadline=None)
@given(widths, widths, loads)
def test_voltages_bounded_by_rails(wp, wn, load):
    """Node voltages never leave (a small band around) the rails."""
    sim = TransientSimulator(_inverter(wp, wn), TECH, extra_caps={"out": load})
    result = sim.run(
        {"in": step(VDD, at=50.0, rise=20.0)},
        duration=800.0, dt=1.0, initial={"out": VDD},
    )
    v = result.v("out")
    assert float(v.min()) >= -0.25 * VDD
    assert float(v.max()) <= 1.25 * VDD


@settings(max_examples=15, deadline=None)
@given(widths, widths, loads)
def test_inverter_output_monotone_on_step(wp, wn, load):
    """A single rising step on the input discharges the output
    monotonically (within numerical tolerance)."""
    sim = TransientSimulator(_inverter(wp, wn), TECH, extra_caps={"out": load})
    result = sim.run(
        {"in": step(VDD, at=50.0, rise=5.0)},
        duration=1500.0, dt=1.0, initial={"out": VDD},
    )
    v = result.v("out")
    start = 60  # after the input edge completes
    diffs = np.diff(v[start:])
    assert (diffs <= 1e-6).all()


@settings(max_examples=15, deadline=None)
@given(widths, loads, st.floats(min_value=1.5, max_value=4.0))
def test_wider_pulldown_never_slower(wn, load, factor):
    def delay(w):
        sim = TransientSimulator(_inverter(2 * w, w), TECH, extra_caps={"out": load})
        result = sim.run(
            {"in": step(VDD, at=50.0, rise=10.0)},
            duration=3000.0, dt=1.0, initial={"out": VDD},
        )
        return result.delay("in", "out", True, False)

    slow = delay(wn)
    fast = delay(wn * factor)
    assert slow is not None and fast is not None
    assert fast <= slow * 1.02


@settings(max_examples=10, deadline=None)
@given(widths, loads)
def test_steady_state_independent_of_dt(wn, load):
    """Backward Euler: the settled value must not depend on the step size."""
    def final(dt):
        sim = TransientSimulator(_inverter(2 * wn, wn), TECH,
                                 extra_caps={"out": load})
        result = sim.run(
            {"in": constant(VDD)}, duration=2000.0, dt=dt,
            initial={"out": VDD},
        )
        return result.final("out")

    assert final(1.0) == pytest.approx(final(4.0), abs=0.05 * VDD)


@settings(max_examples=10, deadline=None)
@given(widths)
def test_off_device_holds_node(w):
    """With the gate off, a charged node leaks only negligibly within a
    short window."""
    devices = [
        Transistor("mn", Polarity.NMOS, "node", "gate", "vss", "vss", w),
    ]
    sim = TransientSimulator(devices, TECH, extra_caps={"node": 20.0})
    result = sim.run(
        {"gate": constant(0.0)}, duration=500.0, dt=1.0,
        initial={"node": VDD},
    )
    assert result.final("node") > 0.9 * VDD
