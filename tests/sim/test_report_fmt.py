"""Timing report formatting tests."""


from repro.sim import format_timing_report
from repro.sizing import DelaySpec


WIDTHS = {"P0": 2.0, "N0": 1.0, "P1": 4.0, "N1": 2.0, "P2": 8.0, "N2": 4.0}


class TestFormat:
    def test_outputs_listed_with_slack(self, inverter_chain, library):
        spec = DelaySpec(data=1000.0)
        text = format_timing_report(inverter_chain, library, WIDTHS, spec)
        assert "out" in text
        assert "slack" in text
        assert "critical path" in text

    def test_critical_path_walks_nets(self, inverter_chain, library):
        text = format_timing_report(inverter_chain, library, WIDTHS)
        for net in ("in", "n1", "n2", "out"):
            assert net in text

    def test_slope_violations_flagged(self, inverter_chain, library):
        tight = DelaySpec(
            data=1000.0, max_output_slope=1.0, max_internal_slope=1.0
        )
        text = format_timing_report(inverter_chain, library, WIDTHS, tight)
        assert "VIOLATION" in text

    def test_clean_slopes_reported(self, inverter_chain, library):
        loose = DelaySpec(
            data=1000.0, max_output_slope=1e6, max_internal_slope=1e6
        )
        text = format_timing_report(inverter_chain, library, WIDTHS, loose)
        assert "all nets within limits" in text

    def test_without_spec_no_slope_section(self, inverter_chain, library):
        text = format_timing_report(inverter_chain, library, WIDTHS)
        assert "slope checks" not in text


class TestCLIReport:
    def test_size_with_report_and_save(self, capsys, tmp_path):
        from repro.cli import main

        artifact = tmp_path / "out.json"
        code = main([
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
            "--report", "--save", str(artifact),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "timing report" in out
        assert "critical path" in out
        assert artifact.exists()

        from repro.core.artifacts import load_sizing

        payload = load_sizing(str(artifact))
        assert payload["result"]["converged"]
