"""Waveform stimulus and measurement tests."""

import numpy as np
import pytest

from repro.sim import (
    PiecewiseLinear,
    clock,
    constant,
    crossing_time,
    measure_delay,
    measure_transition,
    step,
)


class TestPiecewiseLinear:
    def test_holds_outside_range(self):
        src = PiecewiseLinear(((10.0, 0.0), (20.0, 1.8)))
        assert src.value(0.0) == 0.0
        assert src.value(100.0) == 1.8

    def test_interpolates(self):
        src = PiecewiseLinear(((0.0, 0.0), (10.0, 1.0)))
        assert src.value(5.0) == pytest.approx(0.5)

    def test_monotone_times_required(self):
        with pytest.raises(ValueError):
            PiecewiseLinear(((1.0, 0.0), (1.0, 1.0)))
        with pytest.raises(ValueError):
            PiecewiseLinear(())

    def test_sample(self):
        src = step(1.8, at=10.0, rise=10.0)
        values = src.sample(np.array([0.0, 15.0, 30.0]))
        assert values[0] == 0.0
        assert values[1] == pytest.approx(0.9)
        assert values[2] == pytest.approx(1.8)

    def test_constant(self):
        assert constant(1.8).value(123.0) == 1.8

    def test_falling_step(self):
        src = step(1.8, at=5.0, rise=1.0, falling=True)
        assert src.value(0.0) == 1.8
        assert src.value(10.0) == 0.0

    def test_clock_cycles(self):
        src = clock(1.8, period=100.0, cycles=2, start_low=50.0)
        assert src.value(0.0) == 0.0
        assert src.value(80.0) == 1.8       # first high phase
        assert src.value(130.0) == 0.0      # first low phase
        assert src.value(180.0) == 1.8      # second high phase


class TestMeasurement:
    def _ramp(self):
        times = np.linspace(0.0, 100.0, 101)
        values = np.clip((times - 20.0) / 40.0, 0.0, 1.0) * 1.8
        return times, values

    def test_crossing_time_rising(self):
        times, values = self._ramp()
        t = crossing_time(times, values, 0.9, rising=True)
        assert t == pytest.approx(40.0, abs=1.0)

    def test_crossing_time_respects_after(self):
        times = np.array([0.0, 10.0, 20.0, 30.0, 40.0])
        values = np.array([0.0, 1.8, 0.0, 1.8, 1.8])
        t = crossing_time(times, values, 0.9, rising=True, after=15.0)
        assert 20.0 < t < 30.0

    def test_crossing_none_when_absent(self):
        times, values = self._ramp()
        assert crossing_time(times, values, 0.9, rising=False) is None

    def test_measure_delay(self):
        times = np.linspace(0.0, 200.0, 201)
        v_in = np.clip((times - 20.0) / 2.0, 0.0, 1.0) * 1.8
        v_out = 1.8 - np.clip((times - 60.0) / 2.0, 0.0, 1.0) * 1.8
        d = measure_delay(times, v_in, v_out, 1.8, in_rising=True, out_rising=False)
        assert d == pytest.approx(40.0, abs=1.0)

    def test_measure_transition(self):
        times, values = self._ramp()
        t = measure_transition(times, values, 1.8, rising=True)
        # 20%..80% takes 0.6 of the 40ps full ramp; scaled back to full swing.
        assert t == pytest.approx(40.0, abs=1.5)

    def test_measure_delay_none_when_no_output_edge(self):
        times = np.linspace(0.0, 100.0, 101)
        v_in = np.clip((times - 20.0) / 2.0, 0.0, 1.0) * 1.8
        v_out = np.zeros_like(times)
        assert measure_delay(times, v_in, v_out, 1.8, True, True) is None
