"""Interconnect (wire RC) modeling tests.

Section 4 motivates the tri-state mux for loads "over long inter-connects";
these tests cover the Elmore wire term in STA, constraints and the sizer.
"""

import pytest

from repro.macros import MacroSpec
from repro.macros.base import MacroBuilder
from repro.models import ModelLibrary, Technology
from repro.sim import StaticTimingAnalyzer
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay

TECH = Technology()
LIB = ModelLibrary(TECH)


def _wire_chain(wire_res: float):
    builder = MacroBuilder("wired", TECH)
    a = builder.input("in")
    mid = builder.wire("mid", wire_cap=10.0, wire_res=wire_res)
    out = builder.output("out", load=20.0)
    builder.size("P0"), builder.size("N0"), builder.size("P1"), builder.size("N1")
    builder.inv("i0", a, mid, "P0", "N0")
    builder.inv("i1", mid, out, "P1", "N1")
    return builder.done()


WIDTHS = {"P0": 4.0, "N0": 2.0, "P1": 4.0, "N1": 2.0}


class TestSTAWireTerm:
    def test_wire_resistance_slows(self):
        short = _wire_chain(0.0)
        long = _wire_chain(2.0)
        t_short = StaticTimingAnalyzer(short, LIB).analyze(WIDTHS).worst(["out"])
        t_long = StaticTimingAnalyzer(long, LIB).analyze(WIDTHS).worst(["out"])
        assert t_long > t_short

    def test_wire_delay_value(self):
        circuit = _wire_chain(2.0)
        analyzer = StaticTimingAnalyzer(circuit, LIB)
        far = analyzer.far_cap("mid", WIDTHS)
        expected = 0.6931471805599453 * 2.0 * far
        assert analyzer.wire_delay("mid", WIDTHS) == pytest.approx(expected)

    def test_far_cap_excludes_driver_diffusion(self):
        circuit = _wire_chain(2.0)
        analyzer = StaticTimingAnalyzer(circuit, LIB)
        far = analyzer.far_cap("mid", WIDTHS)
        total = analyzer.net_load("mid", WIDTHS)
        assert far < total  # no driver parasitic, half the wire cap

    def test_far_cap_posynomial_matches(self):
        circuit = _wire_chain(2.0)
        analyzer = StaticTimingAnalyzer(circuit, LIB)
        posy = analyzer.far_cap_posynomial("mid")
        assert posy.evaluate(WIDTHS) == pytest.approx(analyzer.far_cap("mid", WIDTHS))

    def test_negative_resistance_rejected(self):
        from repro.netlist import Net

        with pytest.raises(ValueError):
            Net("w", wire_res=-1.0)


class TestSizerWithWires:
    def test_wired_circuit_sizes(self):
        circuit = _wire_chain(2.0)
        budget = nominal_delay(circuit, LIB)
        result = SmartSizer(circuit, LIB).size(DelaySpec(data=budget))
        assert result.converged

    def test_wire_delay_is_irreducible(self):
        """No sizing can beat the raw wire Elmore delay floor."""
        circuit = _wire_chain(8.0)
        floor = 0.6931471805599453 * 8.0 * 20.0 * 0.3  # rough: wire x gates
        budget = nominal_delay(circuit, LIB)
        result = SmartSizer(circuit, LIB).size(DelaySpec(data=budget))
        worst = max(result.realized.values())
        assert worst > floor

    def test_gp_sees_wire_term(self):
        """Same budget: the wired circuit needs more area than the unwired
        one (the wire eats delay budget the transistors must buy back)."""
        short = _wire_chain(0.0)
        long = _wire_chain(3.0)
        budget = 0.95 * nominal_delay(long, LIB)
        a_long = SmartSizer(long, LIB).size(DelaySpec(data=budget)).area
        a_short = SmartSizer(short, LIB).size(DelaySpec(data=budget)).area
        assert a_long > a_short


class TestTopologyChoice:
    def test_advisor_handles_long_wire_instances(self, database):
        """Exploration over a long-interconnect instance (the Section-4
        tri-state use case): both topologies size against the wire's Elmore
        term, the wire makes both more expensive, and a recommendation comes
        back.  (A remote receiver tolerates a slower far-end edge, hence the
        relaxed output slope.)"""
        from repro import DesignConstraints, SmartAdvisor

        advisor = SmartAdvisor(database=database, library=LIB)
        topologies = ["mux/strong_mutex_passgate", "mux/tristate"]
        constraints = DesignConstraints(
            delay=700.0, cost="area", max_output_slope=400.0
        )

        short_spec = MacroSpec("mux", 4, output_load=120.0)
        long_spec = MacroSpec(
            "mux", 4, output_load=120.0, params=(("wire_res", 1.0),)
        )
        short = advisor.advise(short_spec, constraints, topologies=topologies)
        long = advisor.advise(long_spec, constraints, topologies=topologies)
        assert long.best is not None

        short_costs = {
            c.topology: c.cost.area for c in short.feasible
        }
        long_costs = {
            c.topology: c.cost.area for c in long.feasible
        }
        for topology in long_costs:
            if topology in short_costs:
                assert long_costs[topology] > short_costs[topology]
