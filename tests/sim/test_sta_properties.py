"""Metamorphic / property-based tests for the static timing analyzer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.macros import MacroSpec, default_database
from repro.macros.base import MacroBuilder
from repro.models import ModelLibrary, Technology
from repro.sim import StaticTimingAnalyzer

TECH = Technology()
LIB = ModelLibrary(TECH)
DB = default_database()


def _chain(length: int, load: float):
    builder = MacroBuilder(f"chain{length}", TECH)
    net = builder.input("in")
    for i in range(length):
        is_last = i == length - 1
        out = builder.output("out", load=load) if is_last else builder.wire(f"n{i}")
        builder.size(f"P{i}"), builder.size(f"N{i}")
        builder.inv(f"i{i}", net, out, f"P{i}", f"N{i}")
        net = out
    return builder.done()


widths_strategy = st.floats(min_value=0.5, max_value=40.0)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.lists(widths_strategy, min_size=10, max_size=10),
    st.floats(min_value=1.0, max_value=100.0),
)
def test_delays_positive(length, widths, load):
    circuit = _chain(length, load)
    env = {
        name: widths[i % len(widths)]
        for i, name in enumerate(circuit.size_table.free_names())
    }
    report = StaticTimingAnalyzer(circuit, LIB).analyze(env)
    assert report.worst(["out"]) > 0.0
    for event in report.arrivals.values():
        assert event.slope > 0.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(widths_strategy, min_size=6, max_size=6),
    st.floats(min_value=1.5, max_value=8.0),
)
def test_uniform_upsizing_speeds_up_loaded_chain(widths, factor):
    """With a fixed external load, scaling every width by k>1 strictly
    reduces the output arrival (R scales 1/k, self-load cancels, fixed load
    term shrinks)."""
    circuit = _chain(3, load=30.0)
    names = circuit.size_table.free_names()
    env = {name: widths[i % len(widths)] for i, name in enumerate(names)}
    scaled = {name: value * factor for name, value in env.items()}
    analyzer = StaticTimingAnalyzer(circuit, LIB)
    base = analyzer.analyze(env).worst(["out"])
    fast = analyzer.analyze(scaled).worst(["out"])
    assert fast < base


@settings(max_examples=25, deadline=None)
@given(
    st.lists(widths_strategy, min_size=6, max_size=6),
    st.floats(min_value=0.0, max_value=500.0),
)
def test_arrival_offset_shifts_exactly(widths, offset):
    circuit = _chain(3, load=20.0)
    names = circuit.size_table.free_names()
    env = {name: widths[i % len(widths)] for i, name in enumerate(names)}
    analyzer = StaticTimingAnalyzer(circuit, LIB)
    base = analyzer.analyze(env).worst(["out"])
    shifted = analyzer.analyze(env, input_arrivals={"in": offset}).worst(["out"])
    assert shifted == pytest.approx(base + offset, rel=1e-9, abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(widths_strategy, min_size=6, max_size=6),
    st.floats(min_value=5.0, max_value=50.0),
    st.floats(min_value=60.0, max_value=300.0),
)
def test_more_load_never_faster(widths, light, heavy):
    names6 = None
    light_chain = _chain(2, load=light)
    heavy_chain = _chain(2, load=heavy)
    env = {
        name: widths[i % len(widths)]
        for i, name in enumerate(light_chain.size_table.free_names())
    }
    t_light = StaticTimingAnalyzer(light_chain, LIB).analyze(env).worst(["out"])
    t_heavy = StaticTimingAnalyzer(heavy_chain, LIB).analyze(env).worst(["out"])
    assert t_heavy > t_light


@settings(max_examples=10, deadline=None)
@given(st.floats(min_value=0.8, max_value=20.0))
def test_path_delay_matches_analyze_on_chain(width):
    """A single-path circuit: per-path measurement equals full STA."""
    from repro.models import Transition

    circuit = _chain(3, load=20.0)
    env = {name: width for name in circuit.size_table.free_names()}
    analyzer = StaticTimingAnalyzer(circuit, LIB)
    report = analyzer.analyze(env)
    hops = [
        ("i0", "a", Transition.FALL),
        ("i1", "a", Transition.RISE),
        ("i2", "a", Transition.FALL),
    ]
    assert analyzer.path_delay(hops, env) == pytest.approx(
        report.arrival("out", Transition.FALL).time, rel=1e-9
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=12))
def test_mux_width_monotone_nominal_delay(width):
    """At nominal sizes, a wider strong-mutex mux is never faster than the
    2-input one (more merge parasitics and wire)."""
    from repro.sizing.engine import nominal_delay

    small = DB.generate(
        "mux/strong_mutex_passgate", MacroSpec("mux", 2, output_load=30.0), TECH
    )
    big = DB.generate(
        "mux/strong_mutex_passgate", MacroSpec("mux", width, output_load=30.0), TECH
    )
    assert nominal_delay(big, LIB) >= nominal_delay(small, LIB) - 1e-6
