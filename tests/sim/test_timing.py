"""Static timing analyzer tests."""

import pytest

from repro.models import Transition
from repro.sim import StaticTimingAnalyzer
from repro.sim.timing import arc_input_transition, stage_arcs


@pytest.fixture
def chain_analyzer(inverter_chain, library):
    return StaticTimingAnalyzer(inverter_chain, library)


WIDTHS = {"P0": 2.0, "N0": 1.0, "P1": 4.0, "N1": 2.0, "P2": 8.0, "N2": 4.0}


class TestAnalyze:
    def test_arrivals_propagate(self, chain_analyzer):
        report = chain_analyzer.analyze(WIDTHS)
        t_mid = report.net_delay("n1")
        t_out = report.net_delay("out")
        assert 0.0 < t_mid < t_out

    def test_both_transitions_present(self, chain_analyzer):
        report = chain_analyzer.analyze(WIDTHS)
        assert report.arrival("out", Transition.RISE) is not None
        assert report.arrival("out", Transition.FALL) is not None

    def test_worst_over_outputs(self, chain_analyzer, inverter_chain):
        report = chain_analyzer.analyze(WIDTHS)
        assert report.worst(inverter_chain.primary_outputs) == report.net_delay("out")

    def test_input_arrival_offsets(self, chain_analyzer):
        base = chain_analyzer.analyze(WIDTHS).net_delay("out")
        shifted = chain_analyzer.analyze(
            WIDTHS, input_arrivals={"in": 100.0}
        ).net_delay("out")
        assert shifted == pytest.approx(base + 100.0, rel=1e-9)

    def test_wider_devices_faster(self, chain_analyzer):
        slow = chain_analyzer.analyze(WIDTHS).net_delay("out")
        fat = {k: 4 * v for k, v in WIDTHS.items()}
        fast = chain_analyzer.analyze(fat).net_delay("out")
        assert fast < slow

    def test_slower_input_slope_slower(self, chain_analyzer):
        fast = chain_analyzer.analyze(WIDTHS, input_slope=10.0).net_delay("out")
        slow = chain_analyzer.analyze(WIDTHS, input_slope=80.0).net_delay("out")
        assert slow > fast

    def test_critical_path_walks_back(self, chain_analyzer):
        report = chain_analyzer.analyze(WIDTHS)
        chain = report.critical_path("out")
        nets = [event.net for event in chain]
        assert nets == ["in", "n1", "n2", "out"]

    def test_domino_clock_launch(self, domino_mux, library):
        analyzer = StaticTimingAnalyzer(domino_mux, library)
        env = domino_mux.size_table.default_env()
        report = analyzer.analyze(env)
        # Dynamic node must see both precharge (rise) and evaluate (fall).
        assert report.arrival("dyn", Transition.RISE) is not None
        assert report.arrival("dyn", Transition.FALL) is not None


class TestNetLoad:
    def test_includes_fanout_and_wire(self, inverter_chain, library):
        analyzer = StaticTimingAnalyzer(inverter_chain, library)
        load = analyzer.net_load("n1", WIDTHS)
        expected_gates = library.tech.c_gate * (WIDTHS["P1"] + WIDTHS["N1"])
        assert load > expected_gates  # plus driver diffusion

    def test_output_includes_external(self, inverter_chain, library):
        analyzer = StaticTimingAnalyzer(inverter_chain, library)
        load = analyzer.net_load("out", WIDTHS)
        assert load >= 10.0  # fixture applies a 10 fF external load... 20 in conftest

    def test_load_posynomial_matches(self, inverter_chain, library):
        analyzer = StaticTimingAnalyzer(inverter_chain, library)
        posy = analyzer.load_posynomial("n1")
        assert posy.evaluate(WIDTHS) == pytest.approx(analyzer.net_load("n1", WIDTHS))


class TestPathDelay:
    def test_path_delay_sums_stages(self, chain_analyzer):
        hops = [
            ("i0", "a", Transition.FALL),
            ("i1", "a", Transition.RISE),
            ("i2", "a", Transition.FALL),
        ]
        total = chain_analyzer.path_delay(hops, WIDTHS)
        partial = chain_analyzer.path_delay(hops[:2], WIDTHS)
        assert total > partial > 0

    def test_path_delay_consistent_with_analyze(self, chain_analyzer):
        hops = [
            ("i0", "a", Transition.FALL),
            ("i1", "a", Transition.RISE),
            ("i2", "a", Transition.FALL),
        ]
        report = chain_analyzer.analyze(WIDTHS)
        measured = chain_analyzer.path_delay(hops, WIDTHS)
        # The chain has a single path per transition; full STA must agree.
        assert measured == pytest.approx(
            report.arrival("out", Transition.FALL).time, rel=1e-6
        )

    def test_net_slopes_only_worsen(self, chain_analyzer):
        hops = [
            ("i0", "a", Transition.FALL),
            ("i1", "a", Transition.RISE),
        ]
        base = chain_analyzer.path_delay(hops, WIDTHS)
        slopes = {("n1", Transition.FALL): 500.0}
        worse = chain_analyzer.path_delay(hops, WIDTHS, net_slopes=slopes)
        assert worse > base


class TestArcs:
    def test_arc_input_transition_inverting(self, inverter_chain, library):
        stage = inverter_chain.stage("i0")
        pin = stage.pin("a")
        assert arc_input_transition(stage, pin, Transition.RISE, library) is Transition.FALL

    def test_arc_input_transition_missing(self, domino_mux, library):
        stage = next(s for s in domino_mux.stages if s.is_dynamic)
        data_pin = stage.data_pins()[0]
        with pytest.raises(KeyError):
            arc_input_transition(stage, data_pin, Transition.RISE, library)

    def test_select_arcs_launch_both_edges(self, small_mux, library):
        stage = small_mux.stage("pass0")
        sel = stage.select_pins()[0]
        arcs = stage_arcs(stage, sel, library)
        outs = {out for _in, out in arcs}
        ins = {i for i, _out in arcs}
        assert outs == {Transition.RISE, Transition.FALL}
        assert ins == {Transition.RISE}
