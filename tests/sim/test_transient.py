"""Switch-level transient simulator tests: functional + delay plausibility."""


from repro.models import Technology
from repro.netlist import Polarity, Transistor
from repro.sim import TransientSimulator, step
from repro.sim.waveforms import constant

TECH = Technology()
VDD = TECH.vdd


def inverter(wp=4.0, wn=2.0, in_net="in", out_net="out", name=""):
    return [
        Transistor(f"{name}mp", Polarity.PMOS, out_net, in_net, "vdd", "vdd", wp),
        Transistor(f"{name}mn", Polarity.NMOS, out_net, in_net, "vss", "vss", wn),
    ]


class TestInverter:
    def test_logic_levels(self):
        sim = TransientSimulator(inverter(), TECH, extra_caps={"out": 10.0})
        result = sim.run({"in": step(VDD, at=100.0, rise=20.0)}, duration=600.0,
                         dt=1.0, initial={"out": VDD})
        assert result.final("out") < 0.1 * VDD

    def test_falling_input_raises_output(self):
        sim = TransientSimulator(inverter(), TECH, extra_caps={"out": 10.0})
        result = sim.run(
            {"in": step(VDD, at=100.0, rise=20.0, falling=True)},
            duration=600.0, dt=1.0, initial={"out": 0.0},
        )
        assert result.final("out") > 0.9 * VDD

    def test_delay_scales_inverse_with_width(self):
        delays = {}
        for wn in (1.0, 4.0):
            sim = TransientSimulator(inverter(wp=2 * wn, wn=wn), TECH,
                                     extra_caps={"out": 30.0})
            result = sim.run({"in": step(VDD, at=100.0, rise=10.0)},
                             duration=2000.0, dt=1.0, initial={"out": VDD})
            delays[wn] = result.delay("in", "out", True, False)
        assert delays[1.0] > 2.0 * delays[4.0]

    def test_delay_increases_with_load(self):
        delays = {}
        for load in (5.0, 50.0):
            sim = TransientSimulator(inverter(), TECH, extra_caps={"out": load})
            result = sim.run({"in": step(VDD, at=100.0, rise=10.0)},
                             duration=2000.0, dt=1.0, initial={"out": VDD})
            delays[load] = result.delay("in", "out", True, False)
        assert delays[50.0] > delays[5.0]

    def test_delay_order_of_magnitude(self):
        """ln2 * R * C with R = 8kΩ/2µm, C ≈ 30 fF + parasitics -> tens of ps."""
        sim = TransientSimulator(inverter(), TECH, extra_caps={"out": 30.0})
        result = sim.run({"in": step(VDD, at=100.0, rise=10.0)},
                         duration=2000.0, dt=0.5, initial={"out": VDD})
        delay = result.delay("in", "out", True, False)
        assert 5.0 < delay < 300.0


class TestChainAndPass:
    def test_two_stage_chain_non_inverting(self):
        devices = inverter(name="a", in_net="in", out_net="mid") + inverter(
            name="b", in_net="mid", out_net="out"
        )
        sim = TransientSimulator(devices, TECH, extra_caps={"out": 10.0})
        result = sim.run({"in": step(VDD, at=100.0, rise=10.0)},
                         duration=1500.0, dt=1.0,
                         initial={"mid": VDD, "out": 0.0})
        assert result.final("out") > 0.9 * VDD
        assert result.final("mid") < 0.1 * VDD

    def test_pass_gate_transfers_when_on(self):
        devices = [
            Transistor("mn", Polarity.NMOS, "out", "sel", "in", "vss", 4.0),
            Transistor("mp", Polarity.PMOS, "out", "selb", "in", "vdd", 4.0),
        ]
        sim = TransientSimulator(devices, TECH, extra_caps={"out": 10.0})
        result = sim.run(
            {"in": step(VDD, at=50.0, rise=10.0),
             "sel": constant(VDD), "selb": constant(0.0)},
            duration=800.0, dt=1.0,
        )
        assert result.final("out") > 0.9 * VDD

    def test_pass_gate_blocks_when_off(self):
        devices = [
            Transistor("mn", Polarity.NMOS, "out", "sel", "in", "vss", 4.0),
            Transistor("mp", Polarity.PMOS, "out", "selb", "in", "vdd", 4.0),
        ]
        sim = TransientSimulator(devices, TECH, extra_caps={"out": 10.0})
        result = sim.run(
            {"in": step(VDD, at=50.0, rise=10.0),
             "sel": constant(0.0), "selb": constant(VDD)},
            duration=800.0, dt=1.0,
        )
        assert result.final("out") < 0.2 * VDD


class TestDomino:
    def _domino_devices(self):
        """Clocked domino AND of (a, b) with output inverter."""
        return [
            Transistor("mpre", Polarity.PMOS, "dyn", "clk", "vdd", "vdd", 2.0),
            Transistor("ma", Polarity.NMOS, "dyn", "a", "x1", "vss", 4.0),
            Transistor("mb", Polarity.NMOS, "x1", "b", "foot", "vss", 4.0),
            Transistor("mft", Polarity.NMOS, "foot", "clk", "vss", "vss", 6.0),
        ] + inverter(name="buf", in_net="dyn", out_net="out")

    def test_precharge_then_evaluate(self):
        from repro.sim import clock as clock_stim

        sim = TransientSimulator(self._domino_devices(), TECH,
                                 extra_caps={"dyn": 5.0, "out": 10.0})
        stim = {
            "clk": clock_stim(VDD, period=1600.0, cycles=1, start_low=900.0),
            "a": constant(VDD),
            "b": constant(VDD),
        }
        result = sim.run(stim, duration=2000.0, dt=2.0)
        # By the end of precharge (clk low) the node has charged high.
        idx_pre = int(850.0 / 2.0)
        assert result.v("dyn")[idx_pre] > 0.8 * VDD
        # By the end of evaluate (clk still high, both inputs high) the node
        # has discharged and the buffered output has risen.
        idx_eval = int(1650.0 / 2.0)
        assert result.v("dyn")[idx_eval] < 0.2 * VDD
        assert result.v("out")[idx_eval] > 0.8 * VDD

    def test_no_evaluate_when_input_low(self):
        from repro.sim import clock as clock_stim

        sim = TransientSimulator(self._domino_devices(), TECH,
                                 extra_caps={"dyn": 5.0, "out": 10.0})
        stim = {
            "clk": clock_stim(VDD, period=1200.0, cycles=1, start_low=600.0),
            "a": constant(VDD),
            "b": constant(0.0),
        }
        result = sim.run(stim, duration=1400.0, dt=2.0)
        assert result.final("dyn") > 0.7 * VDD
        assert result.final("out") < 0.3 * VDD


class TestNodes:
    def test_supplies_not_nodes(self):
        sim = TransientSimulator(inverter(), TECH)
        assert "vdd" not in sim.nodes
        assert "vss" not in sim.nodes

    def test_waveforms_include_supplies(self):
        sim = TransientSimulator(inverter(), TECH)
        result = sim.run({"in": constant(0.0)}, duration=10.0, dt=1.0)
        assert result.v("vdd")[0] == VDD
        assert result.v("vss")[-1] == 0.0
