"""Single-netlist block view tests (the literal Section-6.4 block)."""

import pytest

from repro.blocks import MacroInstanceSpec, build_block
from repro.macros import MacroSpec
from repro.netlist import export_circuit, read_spice, validate_circuit
from repro.sim import PowerEstimator, StaticTimingAnalyzer


@pytest.fixture(scope="module")
def block(library):
    menu = [
        MacroInstanceSpec(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), count=2
        ),
        MacroInstanceSpec(
            "zero_detect/static_tree", MacroSpec("zero_detect", 8), count=1
        ),
    ]
    return build_block("merged", menu, 0.35, library=library, seed=13)


@pytest.fixture(scope="module")
def merged(block):
    return block.merged_circuit()


class TestMergedCircuit:
    def test_validates(self, merged):
        report = validate_circuit(merged)
        assert report.ok, report.errors

    def test_transistor_count_matches_composition(self, block, merged):
        assert merged.transistor_count() == block.transistor_count()

    def test_single_shared_clock(self, merged):
        assert merged.clock_nets() == ["clk"]

    def test_instances_namespaced(self, merged):
        names = {s.name for s in merged.stages}
        assert any(n.startswith("unsplit_domino_m0_0/") for n in names)
        assert any(n.startswith("unsplit_domino_m0_1/") for n in names)
        assert any(n.startswith("ctrl") for n in names)

    def test_replicas_have_independent_labels(self, block, merged):
        widths = block.merged_widths()
        assert "unsplit_domino_m0_0/P1" in widths
        assert "unsplit_domino_m0_1/P1" in widths

    def test_widths_cover_every_label(self, block, merged):
        widths = block.merged_widths()
        free = set(merged.size_table.free_names())
        assert free <= set(widths)

    def test_sta_runs_on_block(self, block, merged, library):
        report = StaticTimingAnalyzer(merged, library).analyze(
            block.merged_widths()
        )
        assert report.worst(merged.primary_outputs) > 0

    def test_power_consistent_with_composition(self, block, merged, library):
        merged_power = PowerEstimator(merged, library).estimate(
            block.merged_widths()
        ).total
        composed = block.total_power()
        assert merged_power == pytest.approx(composed, rel=0.05)

    def test_spice_export_roundtrip(self, block, merged):
        deck = export_circuit(merged, block.merged_widths())
        parsed = read_spice(deck)
        (name,) = parsed
        assert len(parsed[name]) == merged.transistor_count()
