"""Functional-block substrate tests (Section 6.4 / Table 2)."""

import pytest

from repro.blocks import MacroInstanceSpec, build_block, reduce_block_power
from repro.macros import MacroSpec


@pytest.fixture(scope="module")
def small_block(library):
    menu = [
        MacroInstanceSpec(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), count=2
        ),
        MacroInstanceSpec(
            "zero_detect/static_tree", MacroSpec("zero_detect", 16), count=1
        ),
    ]
    return build_block(
        "blk_test", menu, macro_width_fraction=0.3, library=library, seed=7
    )


class TestBuildBlock:
    def test_macro_fraction_hits_target(self, small_block):
        assert small_block.macro_width_fraction == pytest.approx(0.3, abs=0.06)

    def test_counts_respected(self, small_block):
        assert sum(m.count for m in small_block.macros) == 3

    def test_transistor_count_positive(self, small_block):
        assert small_block.transistor_count() > 100

    def test_power_components(self, small_block):
        assert small_block.macro_power() > 0
        assert small_block.random_power() > 0
        assert small_block.total_power() == pytest.approx(
            small_block.macro_power() + small_block.random_power()
        )

    def test_power_fraction_exceeds_width_fraction_with_domino(self, small_block):
        """Domino macros switch more than random static logic, so their power
        share exceeds their width share — the paper's 22% width / 36% power
        asymmetry."""
        assert small_block.macro_power_fraction() > small_block.macro_width_fraction

    def test_invalid_fraction(self, library):
        with pytest.raises(ValueError):
            build_block("x", [], macro_width_fraction=1.5, library=library)

    def test_deterministic_by_seed(self, library):
        menu = [
            MacroInstanceSpec("mux/tristate", MacroSpec("mux", 4), count=1)
        ]
        a = build_block("a", menu, 0.4, library=library, seed=3)
        b = build_block("b", menu, 0.4, library=library, seed=3)
        assert a.random_width == pytest.approx(b.random_width)


class TestPowerReduction:
    @pytest.fixture(scope="class")
    def reduced(self, small_block):
        return reduce_block_power(small_block)

    def test_block_saving_positive(self, reduced):
        assert reduced.power_saving > 0.0

    def test_no_performance_penalty(self, reduced):
        assert reduced.no_performance_penalty

    def test_random_logic_untouched(self, small_block, reduced):
        assert reduced.random_power == pytest.approx(small_block.random_power())
        assert reduced.random_width == pytest.approx(small_block.random_width)

    def test_savings_bounded_by_macro_share(self, small_block, reduced):
        """Block savings can never exceed the macros' power share."""
        assert reduced.power_saving <= small_block.macro_power_fraction() + 1e-9

    def test_per_macro_records(self, reduced):
        for record in reduced.macros:
            assert record.power_after <= record.power_before
            assert record.width_before > 0

    def test_higher_macro_fraction_saves_more(self, library):
        menu = [
            MacroInstanceSpec(
                "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), count=1
            ),
        ]
        lean = reduce_block_power(
            build_block("lean", menu, 0.15, library=library, seed=5)
        )
        rich = reduce_block_power(
            build_block("rich", menu, 0.6, library=library, seed=5)
        )
        assert rich.power_saving > lean.power_saving
