"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_advise_args(self):
        args = build_parser().parse_args(
            ["advise", "mux", "4", "--delay", "300", "--cost", "power"]
        )
        assert args.macro == "mux"
        assert args.width == 4
        assert args.delay == 300.0
        assert args.cost == "power"

    def test_size_requires_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["size", "mux", "4"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mux/strong_mutex_passgate" in out
        assert "adder/dual_rail_domino_cla" in out

    def test_advise_success(self, capsys):
        code = main(["advise", "mux", "4", "--delay", "400", "--load", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best:" in out

    def test_advise_impossible_budget_nonzero_exit(self, capsys):
        code = main(["advise", "mux", "4", "--delay", "3"])
        assert code == 1

    def test_size_prints_widths(self, capsys):
        code = main([
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged=True" in out
        assert "N2" in out

    def test_export_prints_spice(self, capsys):
        code = main([
            "export", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert ".SUBCKT" in out
        assert ".ENDS" in out

    def test_savings_protocol(self, capsys):
        code = main([
            "savings", "mux", "6", "--load", "40",
            "--topology", "mux/strong_mutex_passgate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "width saving" in out
        assert "timing met      : yes" in out

    def test_pareto(self, capsys):
        code = main([
            "pareto", "mux", "8", "--delay", "360", "--load", "30",
            "--weights", "0,2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "w_clk" in out

    def test_curve(self, capsys):
        code = main([
            "curve", "mux", "4", "--delay", "300", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
            "--scales", "1.0,1.5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "budget ps" in out
        assert "yes" in out


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("ERC001", "ERC101", "CST101", "GP204"):
            assert rule_id in out
        assert "error" in out and "warning" in out

    def test_requires_macro_without_list_rules(self, capsys):
        assert main(["lint"]) == 2

    def test_clean_macro_exits_zero(self, capsys):
        assert main(["lint", "mux", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_single_topology_with_gp_and_coverage(self, capsys):
        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--gp", "--coverage",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert ":gp:" in out or "gp:" in out
        assert "pruning" in out

    def test_json_output(self, capsys):
        import json

        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        reports = json.loads(out)
        assert all(r["ok"] for r in reports)
        assert reports[0]["subject"]

    def test_inapplicable_spec_exits_two(self, capsys):
        code = main([
            "lint", "comparator", "7",
            "--topology", "comparator/xorsum2",
        ])
        assert code == 2

    def test_waivers_file(self, tmp_path, capsys):
        waiver_file = tmp_path / "lint.waive"
        waiver_file.write_text("ERC004  *  # known dual-rail stubs\n")
        code = main([
            "lint", "adder", "16", "--waivers", str(waiver_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "waived" in out


class TestLintDataflow:
    def test_dataflow_prints_interval_verdicts(self, capsys):
        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate", "--dataflow",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "interval STA" in out

    def test_dataflow_impossible_delay_proves_infeasible(self, capsys):
        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--dataflow", "--delay", "1",
        ])
        out = capsys.readouterr().out
        assert code == 1  # DFA303 errors: findings exit code
        assert "provably-infeasible" in out

    def test_dataflow_json_carries_verdicts(self, capsys):
        import json

        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--dataflow", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        verdicts = payload[-1]["interval_sta"]
        assert verdicts[0]["verdict"] in ("provably-feasible", "unknown")
        assert verdicts[0]["circuit"]

    def test_sarif_output_is_valid_sarif(self, capsys):
        import json

        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--dataflow", "--sarif", "--delay", "1",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "DFA303" for r in doc["runs"][0]["results"]
        )

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "2 = usage error" in out


class TestPerfCommand:
    """The performance observatory CLI: report, diff, export, watch."""

    def _traced_run(self, tmp_path, extra=()):
        trace_file = str(tmp_path / "run.jsonl")
        ledger_file = str(tmp_path / "ledger.jsonl")
        code = main([
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
            "--trace", trace_file, "--ledger", ledger_file, *extra,
        ])
        assert code == 0
        return trace_file, ledger_file

    def test_report_on_trace_reconciles(self, tmp_path, capsys):
        trace_file, _ = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["perf", "report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "self-time attribution" in out
        assert "gp_solve" in out
        assert "reconciled" in out
        # the acceptance criterion: totals reconcile to within 1%
        import re

        match = re.search(r"\((\d+\.\d)% reconciled\)", out)
        assert match, out
        assert abs(float(match.group(1)) - 100.0) <= 1.0

    def test_report_on_ledger(self, tmp_path, capsys):
        _, ledger_file = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["perf", "report", ledger_file]) == 0
        out = capsys.readouterr().out
        assert "run ledger" in out
        assert "size" in out

    def test_report_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("nonsense\n")
        assert main(["perf", "report", str(bad)]) == 2

    def test_diff_same_ledger_ok(self, tmp_path, capsys):
        _, ledger_file = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["perf", "diff", ledger_file, ledger_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_diff_flags_synthetic_slowdown(self, tmp_path, capsys):
        import json

        _, ledger_file = self._traced_run(tmp_path)
        slowed_file = str(tmp_path / "slow.jsonl")
        with open(ledger_file) as fh, open(slowed_file, "w") as out_fh:
            for line in fh:
                record = json.loads(line)
                record["wall_s"] = 2.0 * record["wall_s"] + 0.2
                out_fh.write(json.dumps(record) + "\n")
        capsys.readouterr()
        assert main(["perf", "diff", ledger_file, slowed_file]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        # --warn-only softens the exit code but still reports
        assert main([
            "perf", "diff", ledger_file, slowed_file, "--warn-only",
        ]) == 0

    def test_diff_json_output(self, tmp_path, capsys):
        import json

        _, ledger_file = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main([
            "perf", "diff", ledger_file, ledger_file, "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rows"]

    def test_export_flame_graphs(self, tmp_path, capsys):
        import json

        trace_file, _ = self._traced_run(tmp_path)
        chrome = tmp_path / "chrome.json"
        speedscope = tmp_path / "speedscope.json"
        capsys.readouterr()
        assert main([
            "perf", "export", trace_file,
            "--chrome", str(chrome), "--speedscope", str(speedscope),
        ]) == 0
        chrome_doc = json.loads(chrome.read_text())
        assert any(e["ph"] == "X" for e in chrome_doc["traceEvents"])
        scope_doc = json.loads(speedscope.read_text())
        assert scope_doc["profiles"][0]["events"]

    def test_export_requires_a_format(self, tmp_path, capsys):
        trace_file, _ = self._traced_run(tmp_path)
        capsys.readouterr()
        assert main(["perf", "export", trace_file]) == 2

    def test_stream_flag_matches_trace(self, tmp_path, capsys):
        stream_file = str(tmp_path / "stream.jsonl")
        trace_file, _ = self._traced_run(
            tmp_path, extra=["--stream", stream_file]
        )
        with open(trace_file, "rb") as f1, open(stream_file, "rb") as f2:
            assert f1.read() == f2.read()

    def test_watch_renders_stream(self, tmp_path, capsys):
        stream_file = str(tmp_path / "stream.jsonl")
        self._traced_run(tmp_path, extra=["--stream", stream_file])
        capsys.readouterr()
        assert main(["perf", "watch", stream_file]) == 0
        out = capsys.readouterr().out
        assert "-- trace stream" in out
        assert "gp_solve" in out

    def test_ledger_appends_across_runs(self, tmp_path, capsys):
        import json

        _, ledger_file = self._traced_run(tmp_path)
        # second run appends to the same file
        code = main([
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
            "--ledger", ledger_file,
        ])
        assert code == 0
        with open(ledger_file) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert sum(1 for r in records if r["kind"] == "size") >= 2


class TestLintHierCommand:
    def test_hier_cold_then_warm(self, tmp_path, capsys):
        contracts = str(tmp_path / "contracts.jsonl")
        assert main(["lint", "--hier", "--contracts", contracts]) == 0
        cold = capsys.readouterr().out
        assert "derived" in cold
        assert main([
            "lint", "--hier", "--contracts", contracts, "--changed-only",
        ]) == 0
        warm = capsys.readouterr().out
        assert "4 reused / 0 derived" in warm
        # findings identical between passes (stats line differs)
        strip = lambda text: [
            line for line in text.splitlines() if "CTR" in line
        ]
        assert strip(warm) == strip(cold)

    def test_hier_verify_contracts(self, capsys):
        assert main(["lint", "--hier", "--verify-contracts", "2"]) == 0
        out = capsys.readouterr().out
        assert "CTR505" not in out  # clean audit

    def test_hier_json_carries_stats(self, tmp_path, capsys):
        import json

        contracts = str(tmp_path / "contracts.jsonl")
        code = main([
            "lint", "--hier", "--contracts", contracts, "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[-1]["hier"]["contracts_derived"] == 4
        assert payload[0]["schema_version"] >= 1

    def test_changed_only_flat_requires_rule_cache(self, capsys):
        assert main(["lint", "mux", "4", "--changed-only"]) == 2

    def test_flat_rule_cache_cold_then_warm(self, tmp_path, capsys):
        cache = str(tmp_path / "rules.jsonl")
        assert main([
            "lint", "mux", "4", "--topology", "mux/strong_mutex_passgate",
            "--rule-cache", cache,
        ]) == 0
        cold = capsys.readouterr().out
        assert "0/18 replayed" in cold or "replayed" in cold
        assert main([
            "lint", "mux", "4", "--topology", "mux/strong_mutex_passgate",
            "--rule-cache", cache, "--changed-only",
        ]) == 0
        warm = capsys.readouterr().out
        assert "(100%)" in warm


class TestListRulesGrouping:
    """--list-rules groups the catalogue by rule family."""

    def test_family_headers_present_in_order(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        headers = [
            line for line in out.splitlines() if line.startswith("-- ")
        ]
        prefixes = [h.split(":")[0].removeprefix("-- ") for h in headers]
        assert prefixes == [
            "ERC", "CST", "GP", "DFA", "SVC", "CTR", "NSA", "OPT"
        ]

    def test_rules_listed_under_their_family(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.splitlines()
        family = None
        placed = {}
        for line in lines:
            if line.startswith("-- "):
                family = line.split(":")[0].removeprefix("-- ")
            elif line[:3].isalpha() and family:
                placed[line.split()[0]] = family
        for rule_id in ("ERC001", "NSA601", "CTR506", "SVC401"):
            assert placed[rule_id] == rule_id.rstrip("0123456789")

    def test_per_rule_line_format_is_preserved(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        [line] = [
            ln for ln in out.splitlines() if ln.startswith("NSA601")
        ]
        assert line.split()[:3] == ["NSA601", "warning", "electrical"]


class TestLintElectrical:
    def test_flag_runs_nsa_group(self, capsys):
        assert main([
            "lint", "mux", "4", "--electrical",
            "--topology", "mux/unsplit_domino",
        ]) == 0
        out = capsys.readouterr().out
        assert "NSA601" in out
        assert "charge-sharing dip" in out

    def test_without_flag_nsa_stays_quiet(self, capsys):
        assert main([
            "lint", "mux", "4", "--topology", "mux/unsplit_domino",
        ]) == 0
        out = capsys.readouterr().out
        assert "NSA6" not in out


class TestPerfDiffNoBaseline:
    def test_missing_baseline_exits_zero(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        new = str(tmp_path / "new.json")
        with open(new, "w") as fh:
            fh.write("[]")
        assert main(["perf", "diff", missing, new]) == 0
        out = capsys.readouterr().out
        assert "no baseline" in out

    def test_empty_trajectory_baseline_exits_zero(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        with open(base, "w") as fh:
            fh.write("[]")
        assert main(["perf", "diff", base, base]) == 0
        out = capsys.readouterr().out
        assert "no baseline" in out
