"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_advise_args(self):
        args = build_parser().parse_args(
            ["advise", "mux", "4", "--delay", "300", "--cost", "power"]
        )
        assert args.macro == "mux"
        assert args.width == 4
        assert args.delay == 300.0
        assert args.cost == "power"

    def test_size_requires_topology(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["size", "mux", "4"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mux/strong_mutex_passgate" in out
        assert "adder/dual_rail_domino_cla" in out

    def test_advise_success(self, capsys):
        code = main(["advise", "mux", "4", "--delay", "400", "--load", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "best:" in out

    def test_advise_impossible_budget_nonzero_exit(self, capsys):
        code = main(["advise", "mux", "4", "--delay", "3"])
        assert code == 1

    def test_size_prints_widths(self, capsys):
        code = main([
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged=True" in out
        assert "N2" in out

    def test_export_prints_spice(self, capsys):
        code = main([
            "export", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert ".SUBCKT" in out
        assert ".ENDS" in out

    def test_savings_protocol(self, capsys):
        code = main([
            "savings", "mux", "6", "--load", "40",
            "--topology", "mux/strong_mutex_passgate",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "width saving" in out
        assert "timing met      : yes" in out

    def test_pareto(self, capsys):
        code = main([
            "pareto", "mux", "8", "--delay", "360", "--load", "30",
            "--weights", "0,2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "w_clk" in out

    def test_curve(self, capsys):
        code = main([
            "curve", "mux", "4", "--delay", "300", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
            "--scales", "1.0,1.5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "budget ps" in out
        assert "yes" in out


class TestLintCommand:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("ERC001", "ERC101", "CST101", "GP204"):
            assert rule_id in out
        assert "error" in out and "warning" in out

    def test_requires_macro_without_list_rules(self, capsys):
        assert main(["lint"]) == 2

    def test_clean_macro_exits_zero(self, capsys):
        assert main(["lint", "mux", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_single_topology_with_gp_and_coverage(self, capsys):
        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--gp", "--coverage",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert ":gp:" in out or "gp:" in out
        assert "pruning" in out

    def test_json_output(self, capsys):
        import json

        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        reports = json.loads(out)
        assert all(r["ok"] for r in reports)
        assert reports[0]["subject"]

    def test_inapplicable_spec_exits_two(self, capsys):
        code = main([
            "lint", "comparator", "7",
            "--topology", "comparator/xorsum2",
        ])
        assert code == 2

    def test_waivers_file(self, tmp_path, capsys):
        waiver_file = tmp_path / "lint.waive"
        waiver_file.write_text("ERC004  *  # known dual-rail stubs\n")
        code = main([
            "lint", "adder", "16", "--waivers", str(waiver_file),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "waived" in out


class TestLintDataflow:
    def test_dataflow_prints_interval_verdicts(self, capsys):
        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate", "--dataflow",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "interval STA" in out

    def test_dataflow_impossible_delay_proves_infeasible(self, capsys):
        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--dataflow", "--delay", "1",
        ])
        out = capsys.readouterr().out
        assert code == 1  # DFA303 errors: findings exit code
        assert "provably-infeasible" in out

    def test_dataflow_json_carries_verdicts(self, capsys):
        import json

        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--dataflow", "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        verdicts = payload[-1]["interval_sta"]
        assert verdicts[0]["verdict"] in ("provably-feasible", "unknown")
        assert verdicts[0]["circuit"]

    def test_sarif_output_is_valid_sarif(self, capsys):
        import json

        code = main([
            "lint", "mux", "4",
            "--topology", "mux/strong_mutex_passgate",
            "--dataflow", "--sarif", "--delay", "1",
        ])
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert doc["version"] == "2.1.0"
        assert any(
            r["ruleId"] == "DFA303" for r in doc["runs"][0]["results"]
        )

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "2 = usage error" in out
