"""Circuit container tests: connectivity, accounting, merging."""

import pytest

from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist import Circuit, CircuitError, NetKind

TECH = Technology()


def build_chain():
    builder = MacroBuilder("chain", TECH)
    a = builder.input("in")
    mid = builder.wire("mid")
    out = builder.output("out", load=10.0)
    builder.size("P0"), builder.size("N0"), builder.size("P1"), builder.size("N1")
    builder.inv("i0", a, mid, "P0", "N0")
    builder.inv("i1", mid, out, "P1", "N1")
    return builder.done()


class TestConnectivity:
    def test_driver_and_fanout(self):
        c = build_chain()
        assert c.driver_of("mid").name == "i0"
        sinks = [(s.name, p.name) for s, p in c.fanout_of("mid")]
        assert sinks == [("i1", "a")]

    def test_duplicate_stage_name_rejected(self):
        c = build_chain()
        from repro.netlist import Pin, Stage, StageKind

        with pytest.raises(CircuitError):
            c.add_stage(
                Stage(
                    name="i0",
                    kind=StageKind.INV,
                    inputs=[Pin("a", c.net("in"))],
                    output=c.net("out"),
                    size_vars={"pull_up": "P0", "pull_down": "N0"},
                )
            )

    def test_double_drive_rejected(self):
        c = build_chain()
        from repro.netlist import Pin, Stage, StageKind

        with pytest.raises(CircuitError):
            c.add_stage(
                Stage(
                    name="i2",
                    kind=StageKind.INV,
                    inputs=[Pin("a", c.net("in"))],
                    output=c.net("mid"),
                    size_vars={"pull_up": "P0", "pull_down": "N0"},
                )
            )

    def test_topological_order(self):
        c = build_chain()
        names = [s.name for s in c.topological_stages()]
        assert names.index("i0") < names.index("i1")

    def test_loop_detected(self):
        builder = MacroBuilder("loop", TECH)
        a = builder.wire("a")
        b = builder.wire("b")
        builder.size("P"), builder.size("N")
        builder.inv("i0", a, b, "P", "N")
        builder.inv("i1", b, a, "P", "N")
        with pytest.raises(CircuitError):
            builder.done().topological_stages()

    def test_clock_net_registered(self):
        builder = MacroBuilder("clk", TECH)
        builder.clock("clk")
        c = builder.done()
        assert c.clock == "clk"
        assert c.clock_nets() == ["clk"]

    def test_redeclare_net_with_other_kind_rejected(self):
        c = build_chain()
        with pytest.raises(CircuitError):
            c.add_net("mid", NetKind.CLOCK)


class TestAccounting:
    def test_total_width(self):
        c = build_chain()
        widths = {"P0": 2.0, "N0": 1.0, "P1": 4.0, "N1": 2.0}
        assert c.total_width(widths) == pytest.approx(9.0)

    def test_area_posynomial_matches_numeric(self):
        c = build_chain()
        widths = {"P0": 2.0, "N0": 1.0, "P1": 4.0, "N1": 2.0}
        posy = c.area_posynomial()
        assert posy.evaluate(widths) == pytest.approx(c.total_width(widths))

    def test_area_posynomial_with_ratio_labels(self, database, tech):
        from repro.macros import MacroSpec

        mux = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4), tech
        )
        env = mux.size_table.default_env()
        assert mux.area_posynomial().evaluate(env) == pytest.approx(
            mux.total_width(env)
        )

    def test_clock_load(self, database, tech):
        from repro.macros import MacroSpec

        mux = database.generate("mux/unsplit_domino", MacroSpec("mux", 4), tech)
        env = mux.size_table.default_env()
        numeric = mux.clock_load_width(env)
        assert numeric > 0.0
        assert mux.clock_load_posynomial().evaluate(env) == pytest.approx(numeric)

    def test_clock_load_zero_for_static(self):
        c = build_chain()
        assert c.clock_load_width({"P0": 1, "N0": 1, "P1": 1, "N1": 1}) == 0.0
        assert len(c.clock_load_posynomial()) == 0

    def test_transistor_count(self):
        assert build_chain().transistor_count() == 4

    def test_expand_resolves_free_env(self, database, tech):
        from repro.macros import MacroSpec

        mux = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4), tech
        )
        free = mux.size_table.default_env()
        devices = mux.expand_transistors(free)
        assert all(d.width > 0 for d in devices)


class TestMerge:
    def test_merge_prefixes_internals(self):
        top = Circuit("top")
        top.add_net("shared")
        sub = build_chain()
        mapping = top.merge(sub, prefix="u0")
        assert mapping["mid"] == "u0/mid"
        assert "u0/i0" in [s.name for s in top.stages]
        assert "u0/P0" in top.size_table

    def test_merge_shares_existing_boundary_nets(self):
        top = Circuit("top")
        top.add_net("in")
        sub = build_chain()
        mapping = top.merge(sub, prefix="u0")
        assert mapping["in"] == "in"

    def test_merge_preserves_ratio_ties(self, database, tech):
        from repro.macros import MacroSpec

        top = Circuit("top")
        mux = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4), tech
        )
        top.merge(mux, prefix="m0")
        tied = top.size_table["m0/N2i"]
        assert tied.ratio_of == ("m0/N2", 0.5)

    def test_merge_twice_distinct_namespaces(self):
        top = Circuit("top")
        top.merge(build_chain(), prefix="a")
        top.merge(build_chain(), prefix="b")
        assert "a/P0" in top.size_table and "b/P0" in top.size_table
        assert len(top.stages) == 4


class TestInputPhases:
    """Primary-input phase declarations feeding ERC101 and the DFA3xx
    dataflow lattices."""

    def test_declare_and_read_back(self):
        c = build_chain()
        c.declare_input_phase("in", "mono_rise")
        assert c.input_phase("in") == "mono_rise"
        assert c.input_phase("mid") is None  # undeclared nets stay None

    def test_unknown_net_rejected(self):
        c = build_chain()
        with pytest.raises(CircuitError, match="unknown net"):
            c.declare_input_phase("nope", "mono_rise")

    def test_unknown_phase_rejected(self):
        c = build_chain()
        with pytest.raises(CircuitError, match="unknown input phase"):
            c.declare_input_phase("in", "rising")

    def test_builder_passthrough(self):
        builder = MacroBuilder("m", TECH)
        builder.input("a", phase="mono_fall")
        builder.input("b")
        c = builder.done()
        assert c.input_phase("a") == "mono_fall"
        assert c.input_phase("b") is None

    def test_merge_maps_and_preserves_declarations(self):
        top = Circuit("top")
        top.add_net("in")
        top.declare_input_phase("in", "steady")
        sub = build_chain()
        sub.declare_input_phase("in", "async")
        top.merge(sub, prefix="u0")
        # Shared boundary net: the existing declaration wins.
        assert top.input_phase("in") == "steady"
        top2 = Circuit("top2")
        sub2 = build_chain()
        sub2.declare_input_phase("in", "async")
        mapping = top2.merge(sub2, prefix="u0")
        assert top2.input_phase(mapping["in"]) == "async"
