"""Stage construction and flat transistor expansion tests."""

import pytest

from repro.netlist import Net, NetKind, Pin, PinClass, Polarity, Stage, StageKind
from repro.netlist.stages import LogicFamily


def _net(name, kind=NetKind.SIGNAL):
    return Net(name, kind)


def _inv(name="u1"):
    return Stage(
        name=name,
        kind=StageKind.INV,
        inputs=[Pin("a", _net("in"))],
        output=_net("out"),
        size_vars={"pull_up": "P1", "pull_down": "N1"},
    )


def _domino(clocked=True, legs=2, series=2):
    pins = [Pin("clk", _net("clk", NetKind.CLOCK), PinClass.CLOCK)]
    for li in range(legs):
        for si in range(series):
            pins.append(Pin(f"l{li}s{si}", _net(f"d{li}_{si}")))
    size_vars = {"precharge": "P1", "data": "N1"}
    if clocked:
        size_vars["evaluate"] = "N2"
    return Stage(
        name="dom",
        kind=StageKind.DOMINO,
        inputs=pins,
        output=_net("dyn"),
        size_vars=size_vars,
        params={"clocked": clocked, "leg_series": series, "legs": legs},
    )


class TestConstruction:
    def test_missing_roles_rejected(self):
        with pytest.raises(ValueError):
            Stage(
                name="u1",
                kind=StageKind.INV,
                inputs=[Pin("a", _net("in"))],
                output=_net("out"),
                size_vars={"pull_up": "P1"},
            )

    def test_domino_needs_evaluate_when_clocked(self):
        with pytest.raises(ValueError):
            Stage(
                name="d",
                kind=StageKind.DOMINO,
                inputs=[Pin("clk", _net("clk", NetKind.CLOCK), PinClass.CLOCK),
                        Pin("l0s0", _net("d0"))],
                output=_net("dyn"),
                size_vars={"precharge": "P1", "data": "N1"},
                params={"clocked": True},
            )

    def test_needs_inputs(self):
        with pytest.raises(ValueError):
            Stage(
                name="u1",
                kind=StageKind.INV,
                inputs=[],
                output=_net("out"),
                size_vars={"pull_up": "P1", "pull_down": "N1"},
            )

    def test_family_classification(self):
        assert _inv().family is LogicFamily.STATIC
        assert _domino().family is LogicFamily.DOMINO

    def test_clocked_property(self):
        assert _domino(clocked=True).clocked
        assert not _domino(clocked=False).clocked
        assert not _inv().clocked

    def test_inverting(self):
        assert _inv().inverting

    def test_leg_sizes_uniform(self):
        assert _domino(legs=3, series=2).leg_sizes == (2, 2, 2)

    def test_series_n_includes_foot(self):
        assert _domino(clocked=True, series=2).series_n == 3
        assert _domino(clocked=False, series=2).series_n == 2


class TestExpansion:
    def test_inverter_expansion(self):
        devices = _inv().expand({"P1": 4.0, "N1": 2.0})
        assert len(devices) == 2
        pmos = [d for d in devices if d.polarity is Polarity.PMOS]
        nmos = [d for d in devices if d.polarity is Polarity.NMOS]
        assert pmos[0].width == pytest.approx(4.0)
        assert nmos[0].width == pytest.approx(2.0)
        assert pmos[0].source == "vdd"
        assert nmos[0].source == "vss"

    def test_nand_series_stack(self):
        stage = Stage(
            name="g",
            kind=StageKind.NAND,
            inputs=[Pin("a", _net("a")), Pin("b", _net("b")), Pin("c", _net("c"))],
            output=_net("out"),
            size_vars={"pull_up": "P1", "pull_down": "N1"},
        )
        devices = stage.expand({"P1": 2.0, "N1": 3.0})
        nmos = [d for d in devices if d.polarity is Polarity.NMOS]
        pmos = [d for d in devices if d.polarity is Polarity.PMOS]
        assert len(nmos) == 3 and len(pmos) == 3
        # NMOS form a series chain ending at vss.
        sources = {d.source for d in nmos}
        assert "vss" in sources
        drains = {d.drain for d in nmos}
        assert "out" in drains
        # Parallel PMOS all drain to out, source vdd.
        assert all(d.source == "vdd" and d.drain == "out" for d in pmos)

    def test_nor_mirror(self):
        stage = Stage(
            name="g",
            kind=StageKind.NOR,
            inputs=[Pin("a", _net("a")), Pin("b", _net("b"))],
            output=_net("out"),
            size_vars={"pull_up": "P1", "pull_down": "N1"},
        )
        devices = stage.expand({"P1": 2.0, "N1": 3.0})
        nmos = [d for d in devices if d.polarity is Polarity.NMOS]
        assert all(d.drain == "out" and d.source == "vss" for d in nmos)

    def test_xor_is_twelve_devices(self):
        stage = Stage(
            name="x",
            kind=StageKind.XOR,
            inputs=[Pin("a", _net("a")), Pin("b", _net("b"))],
            output=_net("out"),
            size_vars={"pull_up": "P1", "pull_down": "N1"},
        )
        assert stage.transistor_count() == 12

    def test_xor_requires_two_inputs(self):
        stage = Stage(
            name="x",
            kind=StageKind.XOR,
            inputs=[Pin("a", _net("a"))],
            output=_net("out"),
            size_vars={"pull_up": "P1", "pull_down": "N1"},
        )
        with pytest.raises(ValueError):
            stage.expand({"P1": 1.0, "N1": 1.0})

    def test_passgate_expansion(self):
        stage = Stage(
            name="p",
            kind=StageKind.PASSGATE,
            inputs=[
                Pin("d", _net("d"), PinClass.DATA),
                Pin("s", _net("s"), PinClass.SELECT),
            ],
            output=_net("out"),
            size_vars={"pass": "N2", "sel_inv": "N2i"},
        )
        devices = stage.expand({"N2": 4.0, "N2i": 2.0})
        assert len(devices) == 4  # N pass, P pass, 2 inverter devices
        widths = sorted(d.width for d in devices)
        assert widths == [2.0, 2.0, 4.0, 4.0]

    def test_tristate_factor_recorded(self):
        stage = Stage(
            name="t",
            kind=StageKind.TRISTATE,
            inputs=[
                Pin("d", _net("d"), PinClass.DATA),
                Pin("en", _net("en"), PinClass.SELECT),
            ],
            output=_net("out"),
            size_vars={"pull_up": "P1", "pull_down": "N1"},
        )
        devices = stage.expand({"P1": 8.0, "N1": 4.0})
        inv_devices = [d for d in devices if d.factor == 0.25]
        assert len(inv_devices) == 2
        assert {d.width for d in inv_devices} == {2.0, 1.0}

    def test_domino_clocked_expansion(self):
        stage = _domino(clocked=True, legs=2, series=2)
        devices = stage.expand({"P1": 2.0, "N1": 3.0, "N2": 4.0})
        # 1 precharge + 1 foot + 2 legs x 2 series = 6
        assert len(devices) == 6
        foot = [d for d in devices if d.label == "N2"]
        assert len(foot) == 1
        assert foot[0].gate == "clk"

    def test_domino_unclocked_has_no_foot(self):
        stage = _domino(clocked=False)
        devices = stage.expand({"P1": 2.0, "N1": 3.0})
        assert len(devices) == 5
        assert not [d for d in devices if d.label == "N2"]

    def test_domino_ragged_legs(self):
        pins = [Pin("clk", _net("clk", NetKind.CLOCK), PinClass.CLOCK)]
        for i in range(3):
            pins.append(Pin(f"l0s{i}", _net(f"a{i}")))
        pins.append(Pin("l1s0", _net("b0")))
        stage = Stage(
            name="rag",
            kind=StageKind.DOMINO,
            inputs=pins,
            output=_net("dyn"),
            size_vars={"precharge": "P1", "data": "N1"},
            params={"clocked": False, "leg_sizes": (3, 1), "legs": 2},
        )
        assert stage.leg_sizes == (3, 1)
        assert stage.series_n == 3
        devices = stage.expand({"P1": 1.0, "N1": 2.0})
        assert len(devices) == 5  # precharge + 3 + 1

    def test_transistor_count_width_independent(self):
        stage = _domino()
        assert stage.transistor_count() == len(
            stage.expand({"P1": 9.0, "N1": 9.0, "N2": 9.0})
        )

    def test_spice_card_format(self):
        devices = _inv().expand({"P1": 4.0, "N1": 2.0})
        card = devices[0].spice_card()
        assert card.startswith("M")
        assert "W=" in card and "L=" in card
