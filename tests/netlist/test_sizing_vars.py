"""Size-label table tests: labeling, pinning, ratio ties, regularity."""

import pytest

from repro.netlist import SizeTable, SizeVar


class TestSizeVar:
    def test_defaults_free(self):
        v = SizeVar("N1")
        assert v.free

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            SizeVar("N1", lower=2.0, upper=1.0)
        with pytest.raises(ValueError):
            SizeVar("N1", lower=0.0, upper=1.0)

    def test_pinned_must_be_within_bounds(self):
        with pytest.raises(ValueError):
            SizeVar("N1", lower=1.0, upper=2.0, pinned=5.0)

    def test_pinned_and_ratio_conflict(self):
        with pytest.raises(ValueError):
            SizeVar("N1", pinned=1.0, ratio_of=("N2", 0.5))

    def test_pinned_not_free(self):
        assert not SizeVar("N1", pinned=1.0).free

    def test_ratio_not_free(self):
        assert not SizeVar("N1", ratio_of=("N2", 0.5)).free


class TestSizeTable:
    def test_declare_and_lookup(self):
        table = SizeTable()
        table.declare("P1", 0.5, 100.0)
        assert "P1" in table
        assert table["P1"].lower == 0.5

    def test_identical_redeclare_ok(self):
        table = SizeTable()
        table.declare("P1", 0.5, 100.0)
        table.declare("P1", 0.5, 100.0)
        assert len(table) == 1

    def test_conflicting_redeclare_rejected(self):
        table = SizeTable()
        table.declare("P1", 0.5, 100.0)
        with pytest.raises(ValueError):
            table.declare("P1", 0.6, 100.0)

    def test_self_ratio_rejected(self):
        table = SizeTable()
        with pytest.raises(ValueError):
            table.declare("A", ratio_of=("A", 0.5))

    def test_free_names_excludes_tied(self):
        table = SizeTable()
        table.declare("N2")
        table.declare("N2i", ratio_of=("N2", 0.5))
        table.declare("P3", pinned=4.0)
        assert table.free_names() == ("N2",)

    def test_monomial_free_variable(self):
        table = SizeTable()
        table.declare("N1")
        mono = table.monomial("N1")
        assert mono.evaluate({"N1": 3.0}) == pytest.approx(3.0)

    def test_monomial_pinned_is_constant(self):
        table = SizeTable()
        table.declare("P1", pinned=4.0)
        assert table.monomial("P1").evaluate({}) == pytest.approx(4.0)

    def test_monomial_ratio_chain(self):
        table = SizeTable()
        table.declare("N2")
        table.declare("N2i", ratio_of=("N2", 0.5))
        table.declare("N2ii", ratio_of=("N2i", 0.5))
        mono = table.monomial("N2ii")
        assert mono.evaluate({"N2": 8.0}) == pytest.approx(2.0)

    def test_ratio_of_pinned(self):
        table = SizeTable()
        table.declare("N2", pinned=6.0)
        table.declare("N2i", ratio_of=("N2", 0.5))
        assert table.monomial("N2i").evaluate({}) == pytest.approx(3.0)

    def test_circular_ratio_detected(self):
        table = SizeTable()
        table.add(SizeVar("A", ratio_of=("B", 1.0)))
        table.add(SizeVar("B", ratio_of=("A", 1.0)))
        with pytest.raises(ValueError):
            table.monomial("A")

    def test_resolve_full(self):
        table = SizeTable()
        table.declare("N2")
        table.declare("N2i", ratio_of=("N2", 0.5))
        table.declare("P3", pinned=4.0)
        widths = table.resolve({"N2": 10.0})
        assert widths == {
            "N2": pytest.approx(10.0),
            "N2i": pytest.approx(5.0),
            "P3": pytest.approx(4.0),
        }

    def test_pin_and_unpin(self):
        table = SizeTable()
        table.declare("N1", 0.4, 50.0)
        table.pin("N1", 7.0)
        assert table.monomial("N1").evaluate({}) == pytest.approx(7.0)
        table.unpin("N1")
        assert "N1" in table.free_names()

    def test_default_env_geometric_mean(self):
        table = SizeTable()
        table.declare("N1", 1.0, 100.0)
        env = table.default_env()
        assert env["N1"] == pytest.approx(10.0)

    def test_minimum_env(self):
        table = SizeTable()
        table.declare("N1", 0.7, 100.0)
        assert table.minimum_env() == {"N1": pytest.approx(0.7)}

    def test_merge(self):
        a = SizeTable()
        a.declare("N1")
        b = SizeTable()
        b.declare("N2")
        a.merge(b)
        assert "N2" in a

    def test_regularity_signature_resolves_ratios(self):
        table = SizeTable()
        table.declare("N2")
        table.declare("N2i", ratio_of=("N2", 0.5))
        sig = table.regularity_signature(("N2i", "N2"))
        assert sig == ("N2", "N2")
