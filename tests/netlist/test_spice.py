"""SPICE writer/reader round-trip tests."""

import pytest

from repro.netlist import (
    Polarity,
    Transistor,
    circuit_ports,
    export_circuit,
    read_spice,
    write_spice,
)


def _devices():
    return [
        Transistor("mp", Polarity.PMOS, "out", "in", "vdd", "vdd", 4.0, 0.18, "P1"),
        Transistor("mn", Polarity.NMOS, "out", "in", "vss", "vss", 2.0, 0.18, "N1"),
    ]


class TestWriter:
    def test_deck_structure(self):
        deck = write_spice("inv", _devices(), ["in", "out", "vdd", "vss"])
        lines = deck.strip().splitlines()
        assert lines[1] == ".SUBCKT inv in out vdd vss"
        assert lines[-1] == ".ENDS inv"
        assert any(l.startswith("Mmp") for l in lines)

    def test_labels_in_comments(self):
        deck = write_spice("inv", _devices())
        assert "$ label=P1" in deck

    def test_model_names(self):
        deck = write_spice("inv", _devices())
        assert "pch" in deck and "nch" in deck


class TestReader:
    def test_roundtrip(self):
        deck = write_spice("inv", _devices(), ["in", "out"])
        parsed = read_spice(deck)
        assert set(parsed) == {"inv"}
        devices = parsed["inv"]
        assert len(devices) == 2
        by_name = {d.name: d for d in devices}
        assert by_name["mp"].polarity is Polarity.PMOS
        assert by_name["mp"].width == pytest.approx(4.0)
        assert by_name["mp"].label == "P1"
        assert by_name["mn"].drain == "out"

    def test_unknown_card_rejected(self):
        with pytest.raises(ValueError):
            read_spice(".SUBCKT x a\nR1 a b 100\n.ENDS x")

    def test_device_outside_subckt_rejected(self):
        deck = write_spice("inv", _devices())
        body = [l for l in deck.splitlines() if l.startswith("M")][0]
        with pytest.raises(ValueError):
            read_spice(body)

    def test_comments_and_blanks_ignored(self):
        deck = "* hello\n\n.SUBCKT e a\n.ENDS e\n"
        assert read_spice(deck) == {"e": []}


class TestCircuitExport:
    def test_port_order(self, small_mux):
        ports = circuit_ports(small_mux)
        assert ports[-2:] == ["vdd", "vss"]
        assert "in0" in ports and "out" in ports

    def test_clock_in_ports(self, domino_mux):
        assert "clk" in circuit_ports(domino_mux)

    def test_export_roundtrip(self, small_mux):
        env = small_mux.size_table.default_env()
        deck = export_circuit(small_mux, env)
        parsed = read_spice(deck)
        (name,) = parsed
        assert len(parsed[name]) == small_mux.transistor_count()


class TestFactorRoundTrip:
    """``factor`` (width = factor * width(label)) must survive the deck.

    One circuit per family, including the corners that actually carry
    fractional factors: tri-state enable inverters (0.25x), static XOR
    internals (0.5x), and domino keepers.
    """

    CASES = [
        ("mux/strong_mutex_passgate", "mux", 4, ()),
        ("mux/tristate", "mux", 4, ()),
        ("mux/unsplit_domino", "mux", 4, ()),
        ("adder/static_ripple", "adder", 4, ()),
        ("shifter/passgate_barrel", "shifter", 4, ()),
        ("comparator/xorsum2", "comparator", 32, ()),
        ("decoder/flat_static", "decoder", 3, ()),
        ("register_file/tristate_bitline", "register_file", 2,
         (("registers", 4),)),
    ]

    @pytest.mark.parametrize("topology,macro,width,params", CASES)
    def test_roundtrip_preserves_devices(
        self, database, tech, topology, macro, width, params
    ):
        from repro.macros.base import MacroSpec

        circuit = database.generate(
            topology, MacroSpec(macro, width, params=params), tech
        )
        env = circuit.size_table.default_env()
        devices = circuit.expand_transistors(env)
        deck = export_circuit(circuit, env)
        parsed = read_spice(deck)
        (name,) = parsed
        readback = parsed[name]
        assert len(readback) == len(devices) == circuit.transistor_count()

        by_name = {d.name: d for d in devices}
        for device in readback:
            original = by_name[device.name]
            assert device.polarity is original.polarity
            assert (device.drain, device.gate, device.source) == (
                original.drain, original.gate, original.source
            )
            assert device.label == original.label
            assert device.factor == pytest.approx(original.factor)
            # the writer emits W= at fixed decimal precision
            assert device.width == pytest.approx(original.width, rel=1e-3)

        for clk in circuit.clock_nets():
            assert clk in circuit_ports(circuit)
            assert any(d.gate == clk for d in readback)

    def test_fractional_factors_present_in_deck(self, database, tech):
        from repro.macros.base import MacroSpec

        circuit = database.generate(
            "mux/tristate", MacroSpec("mux", 4), tech
        )
        env = circuit.size_table.default_env()
        deck = export_circuit(circuit, env)
        assert "factor=0.25" in deck
        devices = read_spice(deck)[circuit.name.replace("/", "_")]
        assert any(d.factor == pytest.approx(0.25) for d in devices)
