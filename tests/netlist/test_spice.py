"""SPICE writer/reader round-trip tests."""

import pytest

from repro.netlist import (
    Polarity,
    Transistor,
    circuit_ports,
    export_circuit,
    read_spice,
    write_spice,
)


def _devices():
    return [
        Transistor("mp", Polarity.PMOS, "out", "in", "vdd", "vdd", 4.0, 0.18, "P1"),
        Transistor("mn", Polarity.NMOS, "out", "in", "vss", "vss", 2.0, 0.18, "N1"),
    ]


class TestWriter:
    def test_deck_structure(self):
        deck = write_spice("inv", _devices(), ["in", "out", "vdd", "vss"])
        lines = deck.strip().splitlines()
        assert lines[1] == ".SUBCKT inv in out vdd vss"
        assert lines[-1] == ".ENDS inv"
        assert any(l.startswith("Mmp") for l in lines)

    def test_labels_in_comments(self):
        deck = write_spice("inv", _devices())
        assert "$ label=P1" in deck

    def test_model_names(self):
        deck = write_spice("inv", _devices())
        assert "pch" in deck and "nch" in deck


class TestReader:
    def test_roundtrip(self):
        deck = write_spice("inv", _devices(), ["in", "out"])
        parsed = read_spice(deck)
        assert set(parsed) == {"inv"}
        devices = parsed["inv"]
        assert len(devices) == 2
        by_name = {d.name: d for d in devices}
        assert by_name["mp"].polarity is Polarity.PMOS
        assert by_name["mp"].width == pytest.approx(4.0)
        assert by_name["mp"].label == "P1"
        assert by_name["mn"].drain == "out"

    def test_unknown_card_rejected(self):
        with pytest.raises(ValueError):
            read_spice(".SUBCKT x a\nR1 a b 100\n.ENDS x")

    def test_device_outside_subckt_rejected(self):
        deck = write_spice("inv", _devices())
        body = [l for l in deck.splitlines() if l.startswith("M")][0]
        with pytest.raises(ValueError):
            read_spice(body)

    def test_comments_and_blanks_ignored(self):
        deck = "* hello\n\n.SUBCKT e a\n.ENDS e\n"
        assert read_spice(deck) == {"e": []}


class TestCircuitExport:
    def test_port_order(self, small_mux):
        ports = circuit_ports(small_mux)
        assert ports[-2:] == ["vdd", "vss"]
        assert "in0" in ports and "out" in ports

    def test_clock_in_ports(self, domino_mux):
        assert "clk" in circuit_ports(domino_mux)

    def test_export_roundtrip(self, small_mux):
        env = small_mux.size_table.default_env()
        deck = export_circuit(small_mux, env)
        parsed = read_spice(deck)
        (name,) = parsed
        assert len(parsed[name]) == small_mux.transistor_count()
