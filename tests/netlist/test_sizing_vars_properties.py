"""Property-based tests for the size-label table (labeling consistency)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import SizeTable


@st.composite
def size_tables(draw):
    """Random tables with base labels, ratio ties (acyclic by construction),
    and pinned labels."""
    table = SizeTable()
    n_base = draw(st.integers(min_value=1, max_value=4))
    bases = []
    for i in range(n_base):
        name = f"B{i}"
        table.declare(name, 0.4, 100.0)
        bases.append(name)
    n_tied = draw(st.integers(min_value=0, max_value=3))
    for i in range(n_tied):
        # Tie to any earlier label (base or tied) — keeps ties acyclic.
        pool = bases + [f"T{j}" for j in range(i)]
        target = draw(st.sampled_from(pool))
        ratio = draw(st.floats(min_value=0.1, max_value=3.0))
        table.declare(f"T{i}", 0.4, 400.0, ratio_of=(target, ratio))
    n_pinned = draw(st.integers(min_value=0, max_value=2))
    for i in range(n_pinned):
        table.declare(
            f"F{i}", 0.4, 100.0,
            pinned=draw(st.floats(min_value=0.5, max_value=90.0)),
        )
    return table


@st.composite
def env_for(draw, table):
    return {
        name: draw(st.floats(min_value=0.5, max_value=90.0))
        for name in table.free_names()
    }


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_monomial_matches_resolve(data):
    table = data.draw(size_tables())
    env = data.draw(env_for(table))
    resolved = table.resolve(env)
    for name in table.names():
        assert table.monomial(name).evaluate(env) == pytest.approx(
            resolved[name], rel=1e-9
        )


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_free_names_partition(data):
    table = data.draw(size_tables())
    free = set(table.free_names())
    for var in table:
        if var.name in free:
            assert var.free
        else:
            assert var.pinned is not None or var.ratio_of is not None


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_resolve_scaling_linearity(data):
    """Scaling the free env scales every unpinned resolved width linearly;
    pinned widths stay fixed."""
    table = data.draw(size_tables())
    env = data.draw(env_for(table))
    k = data.draw(st.floats(min_value=0.5, max_value=4.0))
    base = table.resolve(env)
    scaled = table.resolve({name: v * k for name, v in env.items()})
    for var in table:
        if var.pinned is not None:
            assert scaled[var.name] == pytest.approx(base[var.name])
        else:
            assert scaled[var.name] == pytest.approx(base[var.name] * k, rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_regularity_signature_idempotent(data):
    table = data.draw(size_tables())
    names = tuple(table.names())
    sig = table.regularity_signature(names)
    assert table.regularity_signature(sig) == sig
    # Every signature element is an untied label.
    for name in sig:
        assert table[name].ratio_of is None


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_default_env_within_bounds(data):
    table = data.draw(size_tables())
    env = table.default_env()
    for name, value in env.items():
        var = table[name]
        assert var.lower <= value <= var.upper
