"""Structural validation tests."""

import pytest

from repro.macros import MacroSpec
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist import Pin, PinClass, Stage, StageKind, validate_circuit

TECH = Technology()


def test_clean_macros_validate(database, tech):
    for topo, spec in [
        ("mux/strong_mutex_passgate", MacroSpec("mux", 4)),
        ("mux/unsplit_domino", MacroSpec("mux", 4)),
        ("zero_detect/static_tree", MacroSpec("zero_detect", 8)),
        ("decoder/flat_static", MacroSpec("decoder", 3)),
    ]:
        circuit = database.generate(topo, spec, tech)
        report = validate_circuit(circuit)
        assert report.ok, report.errors


def test_undriven_loaded_net_flagged():
    builder = MacroBuilder("bad", TECH)
    floating = builder.wire("floating")
    out = builder.output("out")
    builder.size("P"), builder.size("N")
    builder.inv("i0", floating, out, "P", "N")
    report = validate_circuit(builder.done())
    assert not report.ok
    assert any("undriven" in e for e in report.errors)


def test_driven_input_flagged():
    builder = MacroBuilder("bad", TECH)
    a = builder.input("a")
    b = builder.input("b")
    builder.size("P"), builder.size("N")
    builder.inv("i0", a, b, "P", "N")  # drives a primary input
    report = validate_circuit(builder.done())
    assert any("primary input" in e for e in report.errors)


def test_domino_clock_on_signal_net_flagged():
    builder = MacroBuilder("bad", TECH)
    notclk = builder.input("notclk")
    d = builder.input("d")
    node = builder.output("node")
    builder.size("P1"), builder.size("N1"), builder.size("N2")
    stage = Stage(
        name="dom",
        kind=StageKind.DOMINO,
        inputs=[
            Pin("clk", builder.circuit.net("notclk"), PinClass.CLOCK),
            Pin("l0s0", builder.circuit.net("d"), PinClass.DATA),
        ],
        output=builder.circuit.net("node"),
        size_vars={"precharge": "P1", "data": "N1", "evaluate": "N2"},
        params={"clocked": True, "leg_series": 1, "legs": 1},
    )
    builder.circuit.add_stage(stage)
    report = validate_circuit(builder.done())
    assert any("non-clock net" in e for e in report.errors)


def test_unknown_label_flagged():
    builder = MacroBuilder("bad", TECH)
    a = builder.input("a")
    out = builder.output("out")
    builder.size("P")
    # Bypass builder.size for the pull-down label.
    stage = Stage(
        name="i0",
        kind=StageKind.INV,
        inputs=[Pin("a", builder.circuit.net("a"))],
        output=builder.circuit.net("out"),
        size_vars={"pull_up": "P", "pull_down": "MISSING"},
    )
    builder.circuit.add_stage(stage)
    report = validate_circuit(builder.done())
    assert any("MISSING" in e for e in report.errors)


def test_dangling_net_warns_but_passes():
    builder = MacroBuilder("warn", TECH)
    a = builder.input("a")
    dangling = builder.wire("nowhere")
    builder.size("P"), builder.size("N")
    builder.inv("i0", a, dangling, "P", "N")
    report = validate_circuit(builder.done())
    assert report.ok
    assert any("dangling" in w for w in report.warnings)


def test_strong_mutex_shared_select_flagged():
    builder = MacroBuilder("bad", TECH)
    d0 = builder.input("d0")
    d1 = builder.input("d1")
    s = builder.input("s")
    merge = builder.output("merge")
    builder.size("N2")
    builder.size("N2i", ratio_of=("N2", 0.5))
    builder.passgate("p0", d0, s, merge, "N2", "N2i", mutex="strong")
    builder.passgate("p1", d1, s, merge, "N2", "N2i", mutex="strong")
    report = validate_circuit(builder.done())
    assert any("share a select" in e for e in report.errors)


def test_raise_if_failed():
    builder = MacroBuilder("bad", TECH)
    floating = builder.wire("floating")
    out = builder.output("out")
    builder.size("P"), builder.size("N")
    builder.inv("i0", floating, out, "P", "N")
    with pytest.raises(ValueError):
        validate_circuit(builder.done()).raise_if_failed()
