"""Technology parameter tests."""

import pytest

from repro.models import GENERIC_130, GENERIC_180, Technology


class TestValidation:
    def test_defaults_valid(self):
        tech = Technology()
        assert tech.tau > 0
        assert tech.beta == pytest.approx(tech.r_pmos / tech.r_nmos)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            Technology(r_nmos=0.0)
        with pytest.raises(ValueError):
            Technology(vdd=-1.0)

    def test_width_range(self):
        with pytest.raises(ValueError):
            Technology(min_width=10.0, max_width=1.0)

    def test_activity_range(self):
        with pytest.raises(ValueError):
            Technology(activity=0.0)
        with pytest.raises(ValueError):
            Technology(activity=1.5)


class TestDerived:
    def test_inverter_input_cap(self):
        tech = Technology()
        assert tech.inverter_input_cap(2.0, 1.0) == pytest.approx(3.0 * tech.c_gate)

    def test_switching_energy(self):
        tech = Technology(vdd=2.0)
        assert tech.switching_energy(10.0) == pytest.approx(40.0)

    def test_dynamic_power_units(self):
        tech = Technology(vdd=1.0, frequency=2.0)
        # 10 fF, alpha 0.5, 1V, 2GHz -> 10 fJ x 0.5 x 2 GHz = 10 µW
        assert tech.dynamic_power(10.0, activity=0.5) == pytest.approx(10.0)

    def test_dynamic_power_default_activity(self):
        tech = Technology()
        assert tech.dynamic_power(10.0) == pytest.approx(
            tech.activity * 10.0 * tech.vdd ** 2 * tech.frequency
        )

    def test_scaled_returns_copy(self):
        tech = Technology()
        faster = tech.scaled(r_nmos=4.0)
        assert faster.r_nmos == 4.0
        assert tech.r_nmos == 8.0

    def test_presets_differ(self):
        assert GENERIC_130.tau < GENERIC_180.tau
        assert GENERIC_130.vdd < GENERIC_180.vdd

    def test_immutability(self):
        tech = Technology()
        with pytest.raises(Exception):
            tech.r_nmos = 1.0
