"""Model library tests: posynomiality, monotonicity, family-specific arcs."""

import pytest

from repro.models import ModelLibrary, ModelError, Technology, Transition
from repro.netlist import Net, NetKind, Pin, PinClass, SizeTable, Stage, StageKind
from repro.posy import as_posynomial, is_posynomial_in

TECH = Technology()
LIB = ModelLibrary(TECH)


def _table(*names):
    table = SizeTable()
    for name in names:
        table.declare(name)
    return table


def _inv(skew=None):
    return Stage(
        name="i",
        kind=StageKind.INV,
        inputs=[Pin("a", Net("in"))],
        output=Net("out"),
        size_vars={"pull_up": "P", "pull_down": "N"},
        params={"skew": skew} if skew else {},
    )


def _nand(n=2):
    return Stage(
        name="g",
        kind=StageKind.NAND,
        inputs=[Pin(f"in{i}", Net(f"a{i}")) for i in range(n)],
        output=Net("out"),
        size_vars={"pull_up": "P", "pull_down": "N"},
    )


def _passgate():
    return Stage(
        name="p",
        kind=StageKind.PASSGATE,
        inputs=[
            Pin("d", Net("d"), PinClass.DATA),
            Pin("s", Net("s"), PinClass.SELECT),
        ],
        output=Net("out"),
        size_vars={"pass": "W", "sel_inv": "Wi"},
    )


def _domino(clocked=True):
    size_vars = {"precharge": "P", "data": "N"}
    if clocked:
        size_vars["evaluate"] = "E"
    return Stage(
        name="d",
        kind=StageKind.DOMINO,
        inputs=[
            Pin("clk", Net("clk", NetKind.CLOCK), PinClass.CLOCK),
            Pin("l0s0", Net("a"), PinClass.DATA),
        ],
        output=Net("dyn"),
        size_vars=size_vars,
        params={"clocked": clocked, "leg_series": 1, "legs": 1},
    )


LOAD = as_posynomial(20.0)


class TestPosynomiality:
    def test_static_delay_is_posynomial(self):
        table = _table("P", "N")
        d = LIB.delay(_inv(), _inv().inputs[0], Transition.RISE, LOAD, table)
        assert is_posynomial_in(d, {"P", "N"})

    def test_all_kind_templates_posynomial(self):
        cases = [
            (_inv(), _table("P", "N")),
            (_nand(3), _table("P", "N")),
            (_passgate(), _table("W", "Wi")),
            (_domino(), _table("P", "N", "E")),
        ]
        for stage, table in cases:
            for pin in stage.inputs:
                for trans in LIB.arcs(stage, pin):
                    d = LIB.delay(stage, pin, trans, LOAD, table, input_slope=10.0)
                    s = LIB.output_slope(stage, pin, trans, LOAD, table)
                    assert is_posynomial_in(d, table.names())
                    assert is_posynomial_in(s, table.names())

    def test_input_cap_posynomial(self):
        stage, table = _passgate(), _table("W", "Wi")
        for pin in stage.inputs:
            assert is_posynomial_in(LIB.input_cap(stage, pin, table), {"W", "Wi"})


class TestMonotonicity:
    def test_delay_decreases_with_width(self):
        table = _table("P", "N")
        stage = _inv()
        d = LIB.delay(stage, stage.inputs[0], Transition.FALL, LOAD, table)
        small = d.evaluate({"P": 1.0, "N": 1.0})
        big = d.evaluate({"P": 1.0, "N": 4.0})
        assert big < small

    def test_delay_increases_with_load(self):
        table = _table("P", "N")
        stage = _inv()
        env = {"P": 2.0, "N": 1.0}
        d_small = LIB.delay(stage, stage.inputs[0], Transition.FALL,
                            as_posynomial(5.0), table).evaluate(env)
        d_big = LIB.delay(stage, stage.inputs[0], Transition.FALL,
                          as_posynomial(50.0), table).evaluate(env)
        assert d_big > d_small

    def test_slope_term_additive(self):
        table = _table("P", "N")
        stage = _inv()
        env = {"P": 2.0, "N": 1.0}
        base = LIB.delay(stage, stage.inputs[0], Transition.FALL, LOAD, table,
                         input_slope=0.0).evaluate(env)
        slow = LIB.delay(stage, stage.inputs[0], Transition.FALL, LOAD, table,
                         input_slope=40.0).evaluate(env)
        assert slow == pytest.approx(base + TECH.slope_sensitivity * 40.0)

    def test_stack_penalty(self):
        table = _table("P", "N")
        env = {"P": 2.0, "N": 2.0}
        d2 = LIB.delay(_nand(2), _nand(2).inputs[0], Transition.FALL, LOAD,
                       table).evaluate(env)
        d4 = LIB.delay(_nand(4), _nand(4).inputs[0], Transition.FALL, LOAD,
                       table).evaluate(env)
        assert d4 > d2

    def test_high_skew_speeds_rise(self):
        table = _table("P", "N")
        env = {"P": 2.0, "N": 1.0}
        plain = LIB.delay(_inv(), _inv().inputs[0], Transition.RISE, LOAD,
                          table).evaluate(env)
        skewed_stage = _inv(skew="high")
        skewed = LIB.delay(skewed_stage, skewed_stage.inputs[0], Transition.RISE,
                           LOAD, table).evaluate(env)
        assert skewed == pytest.approx(plain * TECH.skew_speedup)


class TestFamilyArcs:
    def test_static_has_both_arcs(self):
        stage = _inv()
        assert set(LIB.arcs(stage, stage.inputs[0])) == {
            Transition.RISE,
            Transition.FALL,
        }

    def test_domino_data_only_falls(self):
        stage = _domino()
        data_pin = stage.inputs[1]
        assert LIB.arcs(stage, data_pin) == (Transition.FALL,)

    def test_domino_clock_arcs_d1_vs_d2(self):
        d1 = _domino(clocked=True)
        d2 = _domino(clocked=False)
        assert set(LIB.arcs(d1, d1.inputs[0])) == {Transition.RISE, Transition.FALL}
        assert LIB.arcs(d2, d2.inputs[0]) == (Transition.RISE,)

    def test_domino_rise_from_data_rejected(self):
        stage = _domino()
        with pytest.raises(ModelError):
            LIB.delay(stage, stage.inputs[1], Transition.RISE, LOAD,
                      _table("P", "N", "E"))

    def test_domino_eval_includes_foot(self):
        table = _table("P", "N", "E")
        stage = _domino(clocked=True)
        env_fat_foot = {"P": 1.0, "N": 2.0, "E": 100.0}
        env_thin_foot = {"P": 1.0, "N": 2.0, "E": 0.5}
        pin = stage.inputs[1]
        fat = LIB.delay(stage, pin, Transition.FALL, LOAD, table).evaluate(env_fat_foot)
        thin = LIB.delay(stage, pin, Transition.FALL, LOAD, table).evaluate(env_thin_foot)
        assert thin > fat

    def test_select_pin_adds_inverter_delay(self):
        table = _table("W", "Wi")
        stage = _passgate()
        env = {"W": 2.0, "Wi": 1.0}
        d_data = LIB.delay(stage, stage.pin("d"), Transition.RISE, LOAD,
                           table).evaluate(env)
        d_sel = LIB.delay(stage, stage.pin("s"), Transition.RISE, LOAD,
                          table).evaluate(env)
        assert d_sel > d_data

    def test_passgate_data_cap_is_diffusion(self):
        table = _table("W", "Wi")
        stage = _passgate()
        cap = LIB.input_cap(stage, stage.pin("d"), table).evaluate({"W": 3.0, "Wi": 1.0})
        assert cap == pytest.approx(2.0 * TECH.c_diff * 3.0)

    def test_unregistered_kind_rejected(self):
        lib = ModelLibrary(TECH)
        lib._models.pop(StageKind.INV)
        with pytest.raises(ModelError):
            lib.model(_inv())

    def test_register_custom_model(self):
        from repro.models import StageModel

        lib = ModelLibrary(TECH)

        class NullModel(StageModel):
            pass

        lib.register(StageKind.INV, NullModel(TECH))
        assert isinstance(lib.model(_inv()), NullModel)
