"""Model calibration tests (Figure 3's "Model Building for Sizing")."""

import pytest

from repro.models import Technology
from repro.models.calibrate import (
    CalibrationSample,
    fit_technology,
    measure_samples,
    model_error,
    predicted_delay,
)


@pytest.fixture(scope="module")
def samples():
    tech = Technology()
    return measure_samples(
        tech, widths=(1.0, 3.0), loads=(10.0,), slopes=(15.0, 50.0), stacks=(1, 2)
    )


class TestMeasurement:
    def test_grid_covered(self, samples):
        assert len(samples) == 2 * 1 * 2 * 2
        assert {s.stack for s in samples} == {1, 2}

    def test_delays_positive_and_ordered(self, samples):
        for s in samples:
            assert s.measured_delay > 0
        # Same width/slope: deeper stack is slower.
        by_key = {}
        for s in samples:
            by_key[(s.width_n, s.input_slope, s.stack)] = s.measured_delay
        for (w, sl, stack), delay in by_key.items():
            if stack == 2:
                assert delay > by_key[(w, sl, 1)]

    def test_slow_slope_slower(self, samples):
        by_key = {
            (s.width_n, s.input_slope, s.stack): s.measured_delay for s in samples
        }
        for (w, sl, stack), delay in by_key.items():
            if sl == 50.0:
                assert delay > by_key[(w, 15.0, stack)]


class TestFit:
    def test_fit_improves_or_matches_error(self, samples):
        tech = Technology()
        fitted = fit_technology(tech, samples)
        assert model_error(fitted, samples) <= model_error(tech, samples) + 1e-9

    def test_fitted_parameters_in_range(self, samples):
        fitted = fit_technology(Technology(), samples)
        assert 0.5 <= fitted.stack_derate <= 1.2
        assert 0.05 <= fitted.slope_sensitivity <= 1.0

    def test_fit_without_samples_measures_its_own(self):
        tech = Technology()
        fitted = fit_technology(
            tech,
            measure_samples(tech, widths=(2.0,), loads=(10.0,),
                            slopes=(20.0,), stacks=(1, 2)),
        )
        assert fitted.name == tech.name

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_technology(Technology(), [])
        with pytest.raises(ValueError):
            model_error(Technology(), [])

    def test_reasonable_model_error_after_fit(self, samples):
        fitted = fit_technology(Technology(), samples)
        # The posynomial template should track the switch-level sim within
        # ~35% RMS over this grid — accurate enough for the Figure-4 loop.
        assert model_error(fitted, samples) < 0.35


class TestPrediction:
    def test_predicted_delay_formula(self):
        tech = Technology()
        s = CalibrationSample(
            width_p=2.0, width_n=1.0, load_ff=10.0,
            input_slope=20.0, stack=1, measured_delay=0.0,
        )
        expected = (
            0.6931471805599453
            * (tech.r_nmos / 1.0)
            * (tech.c_diff * 3.0 + 10.0)
            + tech.slope_sensitivity * 20.0
        )
        assert predicted_delay(s, tech) == pytest.approx(expected)
