"""TILOS-style iterative sizer tests and GP-vs-TILOS comparison."""

import pytest

from repro.macros import MacroSpec
from repro.sizing import DelaySpec, SmartSizer, TilosSizer
from repro.sizing.engine import nominal_delay


class TestBasics:
    def test_invalid_step(self, inverter_chain, library):
        with pytest.raises(ValueError):
            TilosSizer(inverter_chain, library, step=1.0)

    def test_meets_feasible_target(self, inverter_chain, library):
        target = nominal_delay(inverter_chain, library)
        result = TilosSizer(inverter_chain, library).size(target)
        assert result.met
        assert result.realized_delay <= target
        assert result.iterations >= 0

    def test_starts_from_minimum(self, inverter_chain, library):
        """A very loose target should barely move anything."""
        huge = 10.0 * nominal_delay(inverter_chain, library)
        result = TilosSizer(inverter_chain, library).size(huge)
        table = inverter_chain.size_table
        for name, width in result.widths.items():
            assert width == pytest.approx(table[name].lower)

    def test_gives_up_on_impossible_target(self, inverter_chain, library):
        result = TilosSizer(
            inverter_chain, library, max_iterations=300
        ).size(1.0)
        assert not result.met

    def test_tighter_target_more_area(self, inverter_chain, library):
        nom = nominal_delay(inverter_chain, library)
        loose = TilosSizer(inverter_chain, library).size(1.2 * nom)
        tight = TilosSizer(inverter_chain, library).size(0.85 * nom)
        assert tight.met
        assert tight.area > loose.area

    def test_heuristic_fails_where_gp_succeeds(self, small_mux, library):
        """"may or may not meet the specified constraints all the time":
        a target the GP meets but the greedy heuristic gives up on."""
        nom = nominal_delay(small_mux, library)
        target = 0.8 * nom
        tilos = TilosSizer(small_mux, library).size(target)
        gp = SmartSizer(small_mux, library).size(
            DelaySpec(data=target, max_output_slope=1e6, max_internal_slope=1e6)
        )
        assert gp.converged
        # The heuristic either misses the target or needs more area.
        assert (not tilos.met) or tilos.area >= gp.area * 0.9

    def test_respects_bounds(self, small_mux, library):
        result = TilosSizer(small_mux, library).size(
            0.8 * nominal_delay(small_mux, library)
        )
        for name, width in result.widths.items():
            var = small_mux.size_table[name]
            assert var.lower - 1e-9 <= width <= var.upper + 1e-9


class TestAgainstGP:
    @pytest.mark.parametrize("topology,width", [
        ("mux/strong_mutex_passgate", 4),
        ("zero_detect/static_tree", 16),
    ])
    def test_gp_no_worse_at_same_target(
        self, database, library, tech, topology, width
    ):
        """The GP's global optimum cannot lose to the greedy heuristic on
        the metric both optimize (area at a met delay) — modulo the GP's
        extra reliability constraints, hence the small tolerance."""
        family = topology.split("/")[0]
        circuit = database.generate(
            topology, MacroSpec(family, width, output_load=20.0), tech
        )
        target = 0.85 * nominal_delay(circuit, library)
        tilos = TilosSizer(circuit, library).size(target)
        # Same game for both: drop the GP's extra reliability constraints so
        # the comparison is area-at-delay only.
        gp = SmartSizer(circuit, library).size(
            DelaySpec(data=target, max_output_slope=1e6, max_internal_slope=1e6)
        )
        assert gp.converged
        if tilos.met:
            assert gp.area <= tilos.area * 1.10

    def test_tilos_blind_to_constraint_classes(self, database, library, tech):
        """TILOS only watches the worst output arrival; SMART's constraint
        generator also budgets slopes.  Measure what the heuristic leaves
        behind."""
        from repro.sizing.engine import measure_slopes

        circuit = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        target = 0.9 * nominal_delay(circuit, library)
        tilos = TilosSizer(circuit, library).size(target)
        gp = SmartSizer(circuit, library).size(DelaySpec(data=target))
        assert gp.converged
        _out_t, int_tilos = measure_slopes(circuit, library, tilos.widths)
        _out_g, int_gp = measure_slopes(circuit, library, gp.widths)
        # The GP held internal slopes under the 350 ps reliability limit.
        assert int_gp <= 350.0 * 1.05
        # (TILOS usually exceeds it; assert only that SMART is no worse.)
        assert int_gp <= int_tilos * 1.05
