"""Opportunistic time borrowing tests (Section 5.3 / reference [12])."""

import pytest

from repro.macros import MacroSpec
from repro.sizing import DelaySpec, SmartSizer, analyze_borrowing
from repro.sizing.engine import nominal_delay


@pytest.fixture(scope="module")
def comparator(database, tech):
    return database.generate(
        "comparator/xorsum4", MacroSpec("comparator", 32, output_load=20.0), tech
    )


class TestAnalysis:
    def test_no_domino_no_records(self, inverter_chain, library):
        report = analyze_borrowing(
            inverter_chain, library,
            inverter_chain.size_table.default_env(),
            DelaySpec(data=500.0),
        )
        assert report.records == []
        assert not report.any_borrowing
        assert report.max_borrowed == 0.0

    def test_comparator_segments_measured(self, comparator, library):
        env = comparator.size_table.default_env()
        nom = nominal_delay(comparator, library)
        report = analyze_borrowing(
            comparator, library, env,
            DelaySpec(data=nom, phase_budget=nom / 2.0),
        )
        assert report.records
        assert all(r.segment_delay > 0 for r in report.records)

    def test_borrowed_is_clamped_nonnegative(self, comparator, library):
        env = comparator.size_table.default_env()
        report = analyze_borrowing(
            comparator, library, env,
            DelaySpec(data=1e6, phase_budget=1e6),
        )
        assert report.max_borrowed == 0.0
        assert report.borrowers() == []


class TestOTBInSizer:
    def test_otb_no_worse_area(self, comparator, library):
        """With a borrow window, the per-phase constraints relax, so the
        area optimum cannot be worse than without OTB."""
        nom = nominal_delay(comparator, library)
        spec = DelaySpec(data=0.95 * nom, phase_budget=0.55 * nom)
        no_otb = SmartSizer(comparator, library).size(spec)
        with_otb = SmartSizer(
            comparator, library, otb_borrow=0.15 * nom
        ).size(spec)
        assert no_otb.converged and with_otb.converged
        assert with_otb.area <= no_otb.area * 1.02

    def test_otb_enables_tighter_phases(self, comparator, library):
        """A phase budget just below the no-OTB floor becomes reachable when
        segments may borrow."""
        nom = nominal_delay(comparator, library)
        tight = DelaySpec(data=0.95 * nom, phase_budget=0.40 * nom)
        borrowing = SmartSizer(
            comparator, library, otb_borrow=0.25 * nom
        ).size(tight)
        assert borrowing.converged or borrowing.worst_violation < 25.0
