"""Section-5.2 pruning tests: regularity, pin precedence, fanout dominance."""


from repro.macros import MacroSpec
from repro.sizing import (
    PathExtractor,
    dominant_stages,
    path_signature,
    prune_fanout_dominance,
    prune_paths,
    prune_pin_precedence,
    prune_regularity,
)


class TestRegularity:
    def test_mux_data_paths_collapse(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        kept = prune_regularity(small_mux, paths)
        # 4 identical data paths -> 1, 4 identical select paths -> 1.
        assert len(kept) == 2

    def test_signatures_preserved(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        kept = prune_regularity(small_mux, paths)
        assert {path_signature(small_mux, p) for p in paths} == {
            path_signature(small_mux, p) for p in kept
        }

    def test_distinct_labels_not_merged(self, database, tech):
        # The weak-mutex mux has a NOR select path structurally different
        # from direct select paths; both classes must survive.
        mux = database.generate(
            "mux/weak_mutex_passgate", MacroSpec("mux", 4), tech
        )
        paths = PathExtractor(mux).extract()
        kept = prune_regularity(mux, paths)
        has_nor = [p for p in kept if any("selnor" == s.stage_name for s in p.steps)]
        direct = [p for p in kept if not any("selnor" == s.stage_name for s in p.steps)]
        assert has_nor and direct


class TestPinPrecedence:
    def test_fast_pins_pruned_in_tree(self, database, tech):
        zdet = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", 16), tech
        )
        paths = PathExtractor(zdet).extract()
        kept = prune_pin_precedence(zdet, paths)
        assert len(kept) < len(paths)
        # Surviving paths only use slow (first) pins of tree gates.
        from repro.netlist import PinSpeed

        for path in kept:
            for step in path.steps:
                pin = zdet.stage(step.stage_name).pin(step.pin_name)
                assert pin.speed is not PinSpeed.FAST

    def test_noop_without_annotations(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        assert prune_pin_precedence(small_mux, paths) == list(paths)


class TestFanoutDominance:
    def test_dominant_stage_per_group(self, small_mux):
        dominant = dominant_stages(small_mux)
        # Groups: drv (x4 identical), pass (x4), outdrv (x1) -> 3 groups.
        assert len(dominant) == 3

    def test_dominance_keeps_coverage(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        kept = prune_fanout_dominance(small_mux, paths)
        assert {path_signature(small_mux, p) for p in paths} == {
            path_signature(small_mux, p) for p in kept
        }

    def test_asymmetric_fanout_prefers_heavier(self, database, tech):
        # In the weak-mutex mux the select NOR loads selects asymmetrically;
        # dominance must keep paths through the max-fanout twin.
        mux = database.generate(
            "mux/weak_mutex_passgate", MacroSpec("mux", 4), tech
        )
        paths = PathExtractor(mux).extract()
        kept = prune_fanout_dominance(mux, paths)
        assert 0 < len(kept) <= len(paths)


class TestCombined:
    def test_stats_accounting(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        result = prune_paths(small_mux, paths)
        stats = result.stats
        assert stats.initial == len(paths)
        assert stats.after_precedence >= stats.after_dominance >= stats.after_regularity
        assert stats.final == len(result.paths)
        assert stats.reduction_factor >= 1.0

    def test_flags_disable_passes(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        result = prune_paths(
            small_mux, paths,
            use_precedence=False, use_dominance=False, use_regularity=False,
        )
        assert result.stats.final == len(paths)

    def test_massive_reduction_on_adder(self, database, tech):
        """The Section-5.2 claim in miniature: a 16-bit dual-rail domino CLA
        has a huge raw path space that collapses to a handful of classes."""
        adder = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 16), tech
        )
        extractor = PathExtractor(adder)
        raw = extractor.count()
        rep = extractor.extract_representative()
        # 16 bits: ~5400 raw -> ~70 representatives (the 64-bit case, checked
        # in the benchmark, exceeds the paper's 250x).
        assert raw / len(rep) > 50.0
