"""Domino charge-sharing (noise / reliability) constraint tests.

SMART generates "constraints for timing, slopes and noise" (Section 5); the
noise constraint bounds each domino node's internal leg diffusion against the
precharge device's node charge.  The transient simulator verifies the effect
physically: a noise-constrained sizing droops less under the worst-case
charge-sharing event.
"""

import pytest

from repro.macros import MacroSpec
from repro.posy import is_posynomial_in
from repro.sim import TransientSimulator, clock, constant, step
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay

RATIO = 1.0


class TestConstraintGeneration:
    def test_noise_constraints_emitted_when_enabled(self, domino_mux, library):
        from repro.sizing import ConstraintGenerator, PathExtractor, prune_paths

        paths = prune_paths(domino_mux, PathExtractor(domino_mux).extract()).paths
        on = ConstraintGenerator(
            domino_mux, library, DelaySpec(data=300.0, charge_sharing_ratio=RATIO)
        ).generate(paths, {})
        off = ConstraintGenerator(
            domino_mux, library, DelaySpec(data=300.0)
        ).generate(paths, {})
        assert on.noise
        assert not off.noise

    def test_noise_expr_posynomial(self, domino_mux, library):
        from repro.sizing import ConstraintGenerator, PathExtractor, prune_paths

        paths = prune_paths(domino_mux, PathExtractor(domino_mux).extract()).paths
        cs = ConstraintGenerator(
            domino_mux, library, DelaySpec(data=300.0, charge_sharing_ratio=RATIO)
        ).generate(paths, {})
        for noise in cs.noise:
            assert is_posynomial_in(noise.expr, domino_mux.size_table.names())

    def test_internal_cap_zero_for_single_series(self, database, library, tech):
        """A 1-deep domino (zero detect) has no internal leg nodes; the foot
        is actively clamped, so no charge-sharing constraint is emitted."""
        zdet = database.generate(
            "zero_detect/domino", MacroSpec("zero_detect", 8), tech
        )
        stage = next(s for s in zdet.stages if s.is_dynamic)
        model = library.model(stage)
        internal = model.internal_charge_cap(stage, zdet.size_table)
        assert len(internal) == 0

    def test_internal_cap_uses_deepest_leg(self, database, library, tech):
        """The adder's ragged K nodes (legs up to series 4) expose 3
        internal nodes in the worst event."""
        adder = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 16), tech
        )
        stage = adder.stage("K0_dom")
        model = library.model(stage)
        internal = model.internal_charge_cap(stage, adder.size_table)
        env = adder.size_table.default_env()
        w_data = adder.size_table.monomial(stage.label("data")).evaluate(env)
        expected = 2.0 * library.tech.c_diff * 3 * w_data
        assert internal.evaluate(env) == pytest.approx(expected)


class TestSizingEffect:
    def test_constraint_grows_precharge(self, database, library, tech):
        spec = MacroSpec("mux", 8, output_load=30.0)
        plain = database.generate("mux/unsplit_domino", spec, tech)
        budget = nominal_delay(plain, library)
        unconstrained = SmartSizer(plain, library).size(DelaySpec(data=budget))

        noisy = database.generate("mux/unsplit_domino", spec, tech)
        constrained = SmartSizer(noisy, library).size(
            DelaySpec(data=budget, charge_sharing_ratio=RATIO)
        )
        assert constrained.converged
        ratio_unc = unconstrained.resolved["P1"] / unconstrained.resolved["N1"]
        ratio_con = constrained.resolved["P1"] / constrained.resolved["N1"]
        assert ratio_con > ratio_unc

    def test_constraint_satisfied_at_solution(self, database, library, tech):
        spec = MacroSpec("mux", 8, output_load=30.0)
        circuit = database.generate("mux/unsplit_domino", spec, tech)
        budget = nominal_delay(circuit, library)
        result = SmartSizer(circuit, library).size(
            DelaySpec(data=budget, charge_sharing_ratio=RATIO)
        )
        stage = next(s for s in circuit.stages if s.is_dynamic)
        model = library.model(stage)
        internal = model.internal_charge_cap(stage, circuit.size_table).evaluate(
            result.widths
        )
        allowed = RATIO * library.tech.c_diff * result.resolved["P1"]
        assert internal <= allowed * 1.01


class TestPhysicalDroop:
    """Worst-case charge sharing measured with the switch-level simulator."""

    def _droop(self, circuit, widths, tech) -> float:
        """Precharge, pre-discharge the internal nodes, evaluate with the
        selected data low: the dynamic node's minimum voltage is the droop."""
        devices = circuit.expand_transistors(widths)
        extra = {
            n.name: n.fixed_cap for n in circuit.nets.values() if n.fixed_cap > 0
        }
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        stim = {"clk": clock(tech.vdd, period=2400.0, cycles=1, start_low=1200.0)}
        n = 8
        for i in range(n):
            # Select 0 rises at evaluate with its data low: the leg conducts
            # down to the pre-discharged internal node but not to ground —
            # pure charge sharing.  (A constant-on select would let the node
            # precharge through the leg and hide the hazard.)
            stim[f"s{i}"] = (
                step(tech.vdd, at=1230.0, rise=15.0)
                if i == 0
                else constant(0.0)
            )
            stim[f"in{i}"] = constant(0.0)
        result = sim.run(stim, duration=2400.0, dt=2.0)
        eval_window = result.v("dyn")[int(1250 / 2):int(2350 / 2)]
        return float(eval_window.min())

    def test_constrained_sizing_droops_less(self, database, library, tech):
        spec = MacroSpec("mux", 8, output_load=30.0)
        budget = nominal_delay(
            database.generate("mux/unsplit_domino", spec, tech), library
        )

        plain_circuit = database.generate("mux/unsplit_domino", spec, tech)
        plain = SmartSizer(plain_circuit, library).size(DelaySpec(data=budget))

        noisy_circuit = database.generate("mux/unsplit_domino", spec, tech)
        constrained = SmartSizer(noisy_circuit, library).size(
            DelaySpec(data=budget, charge_sharing_ratio=0.8)
        )

        v_plain = self._droop(plain_circuit, plain.resolved, tech)
        v_constrained = self._droop(noisy_circuit, constrained.resolved, tech)
        assert v_constrained >= v_plain - 1e-3
