"""Domino keeper tests: expansion, models, sizing, and physical droop."""

import pytest

from repro.core.editing import add_keeper
from repro.macros import MacroSpec
from repro.models import Transition
from repro.netlist import Polarity
from repro.sim import TransientSimulator, clock, constant, step
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


@pytest.fixture
def kept_mux(database, tech):
    mux = database.generate(
        "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
    )
    add_keeper(mux, "dom", ratio=0.15)
    return mux


class TestExpansion:
    def test_keeper_devices_added(self, kept_mux):
        stage = kept_mux.stage("dom")
        names = {d.name.split(".")[-1] for d in stage.expand(
            {label: 2.0 for label in stage.size_vars.values()}
        )}
        assert {"mkeep", "fbp", "fbn"} <= names

    def test_keeper_width_tracks_precharge(self, kept_mux):
        stage = kept_mux.stage("dom")
        devices = stage.expand({label: 4.0 for label in stage.size_vars.values()})
        keeper = next(d for d in devices if d.name.endswith("mkeep"))
        assert keeper.width == pytest.approx(0.15 * 4.0)
        assert keeper.polarity is Polarity.PMOS

    def test_area_posynomial_includes_keeper(self, kept_mux, database, tech):
        plain = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        env = kept_mux.size_table.default_env()
        assert kept_mux.total_width(env) > plain.total_width(env)
        assert kept_mux.area_posynomial().evaluate(env) == pytest.approx(
            kept_mux.total_width(env)
        )

    def test_add_keeper_rejects_static(self, small_mux):
        with pytest.raises(ValueError):
            add_keeper(small_mux, "outdrv", 0.1)


class TestModels:
    def test_contention_slows_evaluate(self, kept_mux, database, tech, library):
        plain = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        env = plain.size_table.default_env()
        stage_k = kept_mux.stage("dom")
        stage_p = plain.stage("dom")
        pin_k = stage_k.data_pins()[0]
        pin_p = stage_p.data_pins()[0]
        r_kept = library.model(stage_k).resistance(
            stage_k, pin_k, Transition.FALL, kept_mux.size_table
        ).evaluate(env)
        r_plain = library.model(stage_p).resistance(
            stage_p, pin_p, Transition.FALL, plain.size_table
        ).evaluate(env)
        assert r_kept > r_plain

    def test_sizer_accounts_for_contention(self, kept_mux, database, tech, library):
        """Same budget: the kept mux costs more area (contention must be
        bought back) — the model sees the keeper."""
        plain = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        budget = 0.9 * nominal_delay(plain, library)
        a_plain = SmartSizer(plain, library).size(DelaySpec(data=budget)).area
        a_kept = SmartSizer(kept_mux, library).size(DelaySpec(data=budget)).area
        assert a_kept > a_plain

    def test_keeper_relaxes_noise_constraint(self, database, tech, library):
        """With the keeper's charge-sharing credit, the same noise ratio
        needs less precharge upsizing."""
        spec = DelaySpec(data=400.0, charge_sharing_ratio=0.6)
        plain = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        kept = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        add_keeper(kept, "dom", ratio=0.2)
        r_plain = SmartSizer(plain, library).size(spec)
        r_kept = SmartSizer(kept, library).size(spec)
        assert r_plain.converged and r_kept.converged
        ratio_plain = r_plain.resolved["P1"] / r_plain.resolved["N1"]
        ratio_kept = r_kept.resolved["P1"] / r_kept.resolved["N1"]
        assert ratio_kept < ratio_plain


class TestPhysicalEffect:
    def _droop(self, circuit, widths, tech):
        devices = circuit.expand_transistors(widths)
        extra = {n.name: n.fixed_cap for n in circuit.nets.values() if n.fixed_cap > 0}
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        stim = {"clk": clock(tech.vdd, period=2400.0, cycles=1, start_low=1200.0)}
        for i in range(8):
            stim[f"s{i}"] = (
                step(tech.vdd, at=1230.0, rise=15.0)
                if i == 0
                else constant(0.0)
            )
            stim[f"in{i}"] = constant(0.0)
        result = sim.run(stim, duration=2400.0, dt=2.0)
        window = result.v("dyn")[int(1300 / 2):int(2350 / 2)]
        return float(window.min())

    def test_keeper_reduces_droop(self, kept_mux, database, tech):
        plain = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
        )
        env = {name: 3.0 for name in plain.size_table.free_names()}
        v_plain = self._droop(plain, env, tech)
        v_kept = self._droop(kept_mux, env, tech)
        assert v_kept > v_plain
