"""Figure-4 engine tests: convergence, spec classes, objectives, pinning."""

import pytest

from repro.sim import StaticTimingAnalyzer
from repro.sizing import DelaySpec, SizingError, SmartSizer
from repro.sizing.engine import (
    measure_class_delays,
    measure_slopes,
    nominal_delay,
    spec_from_measurement,
)


class TestConvergence:
    def test_chain_converges(self, inverter_chain, library):
        nom = nominal_delay(inverter_chain, library)
        result = SmartSizer(inverter_chain, library).size(DelaySpec(data=nom))
        assert result.converged
        assert result.worst_violation <= 2.0

    def test_realized_meets_spec_via_sta(self, inverter_chain, library):
        nom = nominal_delay(inverter_chain, library)
        spec = DelaySpec(data=0.9 * nom)
        result = SmartSizer(inverter_chain, library).size(spec)
        assert result.converged
        report = StaticTimingAnalyzer(inverter_chain, library).analyze(
            result.widths, input_slope=spec.input_slope
        )
        assert report.worst(inverter_chain.primary_outputs) <= spec.data + 2.0

    def test_mux_converges(self, small_mux, library):
        nom = nominal_delay(small_mux, library)
        result = SmartSizer(small_mux, library).size(DelaySpec(data=0.9 * nom))
        assert result.converged

    def test_domino_converges(self, domino_mux, library):
        nom = nominal_delay(domino_mux, library)
        result = SmartSizer(domino_mux, library).size(DelaySpec(data=0.9 * nom))
        assert result.converged
        assert result.clock_load > 0

    def test_widths_within_bounds(self, small_mux, library):
        nom = nominal_delay(small_mux, library)
        result = SmartSizer(small_mux, library).size(DelaySpec(data=0.9 * nom))
        for name, width in result.widths.items():
            var = small_mux.size_table[name]
            assert var.lower - 1e-6 <= width <= var.upper + 1e-6

    def test_history_recorded(self, small_mux, library):
        nom = nominal_delay(small_mux, library)
        result = SmartSizer(small_mux, library).size(DelaySpec(data=0.9 * nom))
        assert len(result.history) == result.iterations
        assert result.history[0].iteration == 0

    def test_infeasible_spec_raises(self, inverter_chain, library):
        with pytest.raises(SizingError):
            SmartSizer(inverter_chain, library).size(DelaySpec(data=1.0))

    def test_unreachable_but_feasible_spec_reports_nonconvergence(
        self, small_mux, library
    ):
        """A spec below the topology's floor but above GP-infeasibility must
        yield converged=False, not an exception."""
        nom = nominal_delay(small_mux, library)
        try:
            result = SmartSizer(small_mux, library).size(
                DelaySpec(data=0.35 * nom), max_outer_iterations=4
            )
            assert not result.converged or result.worst_violation <= 2.0
        except SizingError:
            pass  # also acceptable: detected as infeasible outright


class TestTighterSpecCostsArea:
    def test_area_monotone_in_delay(self, small_mux, library):
        nom = nominal_delay(small_mux, library)
        loose = SmartSizer(small_mux, library).size(DelaySpec(data=1.2 * nom))
        tight = SmartSizer(small_mux, library).size(DelaySpec(data=0.8 * nom))
        assert tight.area > loose.area


class TestObjectives:
    def test_clock_objective_reduces_clock_load(self, domino_mux, library):
        nom = nominal_delay(domino_mux, library)
        spec = DelaySpec(data=nom)
        area_result = SmartSizer(domino_mux, library, objective="area").size(spec)
        clock_result = SmartSizer(domino_mux, library, objective="clock").size(spec)
        assert clock_result.clock_load <= area_result.clock_load * 1.05

    def test_power_objective_runs(self, domino_mux, library):
        nom = nominal_delay(domino_mux, library)
        result = SmartSizer(domino_mux, library, objective="power").size(
            DelaySpec(data=nom)
        )
        assert result.converged

    def test_unknown_objective_rejected(self, small_mux, library):
        with pytest.raises(ValueError):
            SmartSizer(small_mux, library, objective="speed").objective_posynomial()


class TestDesignerPins:
    def test_pinned_label_untouched(self, small_mux, library):
        small_mux.size_table.pin("P3", 12.0)
        try:
            nom = nominal_delay(small_mux, library)
            result = SmartSizer(small_mux, library).size(DelaySpec(data=nom))
            assert result.resolved["P3"] == pytest.approx(12.0)
            assert "P3" not in result.widths
        finally:
            small_mux.size_table.unpin("P3")


class TestMeasurementHelpers:
    def test_nominal_delay_positive(self, small_mux, library):
        assert nominal_delay(small_mux, library) > 0

    def test_measure_class_delays_keys(self, domino_mux, library):
        env = domino_mux.size_table.default_env()
        classes = measure_class_delays(domino_mux, library, env)
        assert "evaluate" in classes
        assert "precharge" in classes
        assert all(v > 0 for v in classes.values())

    def test_measure_slopes(self, small_mux, library):
        env = small_mux.size_table.default_env()
        out_slope, int_slope = measure_slopes(small_mux, library, env)
        assert out_slope > 0 and int_slope > 0

    def test_spec_from_measurement_mapping(self):
        spec = spec_from_measurement(
            {"data": 100.0, "control": 130.0, "precharge": 80.0}
        )
        assert spec.data == 100.0
        assert spec.control == 130.0
        assert spec.precharge == pytest.approx(80.0 * 2.5)
        assert spec.evaluate is None

    def test_spec_from_measurement_empty_rejected(self):
        with pytest.raises(ValueError):
            spec_from_measurement({})


class TestRetargetClamp:
    """The "new delay specification" multipliers are clamped to [0.3, 1.5]
    so one wildly mis-modeled path cannot swing the next GP round."""

    @staticmethod
    def _retarget_for(measured, predicted, spec=100.0, damping=1.0):
        from repro.posy import const
        from repro.sizing.constraints import ConstraintSet, TimingConstraint

        constraints = ConstraintSet(
            timing=[
                TimingConstraint(
                    name="p0", delay=const(predicted), spec=spec,
                    kind="data", hops=(),
                )
            ]
        )
        sizer = SmartSizer.__new__(SmartSizer)  # _retarget needs no state
        return sizer._retarget(constraints, {"p0": measured}, {}, damping)

    def test_over_tight_clamped_low(self):
        # measured far above prediction -> target would go negative
        assert self._retarget_for(measured=500.0, predicted=10.0) == {
            "p0": 0.3
        }

    def test_over_loose_clamped_high(self):
        # measured far below prediction -> target would balloon
        assert self._retarget_for(measured=1.0, predicted=200.0) == {
            "p0": 1.5
        }

    def test_small_mismatch_passes_through(self):
        mult = self._retarget_for(measured=105.0, predicted=100.0)["p0"]
        assert mult == pytest.approx(0.95)

    def test_damping_halves_correction(self):
        full = self._retarget_for(measured=110.0, predicted=100.0)["p0"]
        half = self._retarget_for(
            measured=110.0, predicted=100.0, damping=0.5
        )["p0"]
        assert 1.0 - half == pytest.approx((1.0 - full) / 2.0)

    def test_matched_path_skipped(self):
        assert self._retarget_for(measured=100.0, predicted=100.0) == {}


class TestDampingReset:
    def test_damping_restored_after_feasible_solve(
        self, small_mux, library, monkeypatch
    ):
        """After an infeasible-retarget recovery (damping halved), the next
        *feasible* solve must restore damping to 1.0 — otherwise every later
        iteration corrects mismatches at half strength and convergence drags."""
        from repro.sizing.gp import GeometricProgram, GPInfeasibleError

        nom = nominal_delay(small_mux, library)
        calls = {"n": 0}
        real_solve = GeometricProgram.solve

        def flaky_solve(self, *args, **kwargs):
            index = calls["n"]
            calls["n"] += 1
            if index == 1:
                raise GPInfeasibleError("injected infeasibility")
            return real_solve(self, *args, **kwargs)

        damping_seen = []
        real_retarget = SmartSizer._retarget

        def spy_retarget(self, constraints, realized, env, damping):
            damping_seen.append(damping)
            return real_retarget(self, constraints, realized, env, damping)

        monkeypatch.setattr(GeometricProgram, "solve", flaky_solve)
        monkeypatch.setattr(SmartSizer, "_retarget", spy_retarget)

        # tolerance=-inf forbids convergence so every feasible iteration
        # retargets: it0 optimal, it1 injected-infeasible, it2 optimal
        result = SmartSizer(small_mux, library, pre_screen=False).size(
            DelaySpec(data=nom), tolerance=-1e9, max_outer_iterations=3
        )
        assert result.gp_fallback_count == 1
        assert damping_seen[0] == 1.0
        assert len(damping_seen) == 2
        assert damping_seen[1] == 1.0

    def test_iteration_counts_do_not_regress(self, small_mux, library):
        """The Figure-4 loop still converges in few iterations (the damping
        reset must not destabilize the plain path)."""
        nom = nominal_delay(small_mux, library)
        result = SmartSizer(small_mux, library).size(DelaySpec(data=0.9 * nom))
        assert result.converged
        assert result.iterations <= 4


class TestPruningIntegration:
    def test_prune_stats_attached(self, small_mux, library):
        nom = nominal_delay(small_mux, library)
        result = SmartSizer(small_mux, library).size(DelaySpec(data=nom))
        assert result.prune_stats is not None
        assert result.prune_stats.initial >= result.prune_stats.final

    def test_disable_pruning_same_answer(self, inverter_chain, library):
        nom = nominal_delay(inverter_chain, library)
        pruned = SmartSizer(inverter_chain, library).size(DelaySpec(data=nom))
        full = SmartSizer(inverter_chain, library).size(
            DelaySpec(data=nom), prune=False
        )
        assert full.area == pytest.approx(pruned.area, rel=0.05)
