"""Reproducibility: the flow is deterministic end to end."""

import pytest

from repro.baseline import OverdesignSizer
from repro.macros import MacroSpec, default_database
from repro.models import ModelLibrary
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


def _size_fresh(topology, spec, budget_fraction=0.9):
    database = default_database()
    library = ModelLibrary()
    circuit = database.generate(topology, spec, library.tech)
    budget = budget_fraction * nominal_delay(circuit, library)
    return SmartSizer(circuit, library).size(DelaySpec(data=budget))


class TestDeterminism:
    @pytest.mark.parametrize("topology,spec", [
        ("mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0)),
        ("mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0)),
        ("zero_detect/static_tree", MacroSpec("zero_detect", 16, output_load=20.0)),
    ])
    def test_sizer_repeatable(self, topology, spec):
        a = _size_fresh(topology, spec)
        b = _size_fresh(topology, spec)
        assert a.converged == b.converged
        assert a.iterations == b.iterations
        assert a.area == pytest.approx(b.area, rel=1e-9)
        for name in a.widths:
            assert a.widths[name] == pytest.approx(b.widths[name], rel=1e-9)

    def test_baseline_repeatable(self, database, library, tech):
        spec = MacroSpec("decoder", 4, output_load=20.0)
        runs = []
        for _ in range(2):
            circuit = database.generate("decoder/flat_static", spec, tech)
            runs.append(OverdesignSizer(circuit, library).size())
        assert runs[0].area == pytest.approx(runs[1].area, rel=1e-12)
        assert runs[0].realized_delay == pytest.approx(
            runs[1].realized_delay, rel=1e-12
        )

    def test_generation_deterministic(self, tech):
        database = default_database()
        spec = MacroSpec("adder", 16)
        a = database.generate("adder/dual_rail_domino_cla", spec, tech)
        b = database.generate("adder/dual_rail_domino_cla", spec, tech)
        assert [s.name for s in a.stages] == [s.name for s in b.stages]
        assert a.size_table.names() == b.size_table.names()
