"""Constraint generator tests: Section-5.3 family rules."""


from repro.macros import MacroSpec
from repro.models import Transition
from repro.posy import is_posynomial_in
from repro.sizing import ConstraintGenerator, DelaySpec, PathExtractor, prune_paths


def _constraints(circuit, library, spec=None, otb=0.0):
    spec = spec or DelaySpec(data=200.0)
    paths = prune_paths(circuit, PathExtractor(circuit).extract()).paths
    generator = ConstraintGenerator(circuit, library, spec, otb_borrow=otb)
    return generator, generator.generate(paths, {})


class TestDelaySpec:
    def test_defaults_fall_back_to_data(self):
        spec = DelaySpec(data=100.0)
        for kind in ("control", "evaluate", "precharge", "segment"):
            assert spec.for_kind(kind) == 100.0

    def test_explicit_classes(self):
        spec = DelaySpec(data=100.0, control=150.0, precharge=300.0)
        assert spec.for_kind("control") == 150.0
        assert spec.for_kind("precharge") == 300.0
        assert spec.for_kind("evaluate") == 100.0

    def test_tightened(self):
        spec = DelaySpec(data=100.0, control=150.0).tightened(0.5)
        assert spec.data == 50.0
        assert spec.control == 75.0


class TestStaticRules:
    def test_two_constraints_per_static_path(self, inverter_chain, library):
        _, cs = _constraints(inverter_chain, library)
        # One structural path, rise + fall at the output.
        assert len(cs.timing) == 2
        transitions = {c.hops[-1][2] for c in cs.timing}
        assert transitions == {Transition.RISE, Transition.FALL}

    def test_delay_posynomials_valid(self, inverter_chain, library):
        _, cs = _constraints(inverter_chain, library)
        names = inverter_chain.size_table.names()
        for constraint in cs.timing:
            assert is_posynomial_in(constraint.delay, names)

    def test_slope_constraints_cover_stages(self, inverter_chain, library):
        _, cs = _constraints(inverter_chain, library)
        # 3 stages x 2 transitions, but identical bit-slices dedupe; the
        # chain has distinct labels so all 6 survive.
        assert len(cs.slopes) == 6

    def test_output_vs_internal_slope_limits(self, inverter_chain, library):
        spec = DelaySpec(data=200.0, max_output_slope=77.0, max_internal_slope=333.0)
        _, cs = _constraints(inverter_chain, library, spec)
        by_net = {}
        for s in cs.slopes:
            by_net.setdefault(s.net, set()).add(s.limit)
        assert by_net["out"] == {77.0}
        assert by_net["n1"] == {333.0}


class TestPassRules:
    def test_control_paths_get_four_constraints(self, small_mux, library):
        _, cs = _constraints(small_mux, library)
        control = [c for c in cs.timing if c.kind == "control"]
        # After regularity pruning one representative select path remains;
        # it expands to select-RISE x {out RISE, out FALL} through the pass
        # gate, then chains through the inverting output driver: 2 full-path
        # constraints (the paper's 2 paths x 2 constraints counts the pass
        # output and macro output pairs; our paths end at the macro output).
        assert len(control) == 2
        ends = {c.hops[-1][2] for c in control}
        assert ends == {Transition.RISE, Transition.FALL}

    def test_control_spec_class(self, small_mux, library):
        spec = DelaySpec(data=200.0, control=120.0)
        _, cs = _constraints(small_mux, library, spec)
        for c in cs.timing:
            if c.kind == "control":
                assert c.spec == 120.0
            else:
                assert c.spec == 200.0


class TestDominoRules:
    def test_precharge_and_evaluate_separated(self, domino_mux, library):
        _, cs = _constraints(domino_mux, library)
        kinds = {c.kind for c in cs.timing}
        assert "precharge" in kinds
        assert "evaluate" in kinds

    def test_precharge_starts_with_node_rise(self, domino_mux, library):
        _, cs = _constraints(domino_mux, library)
        for c in cs.timing:
            if c.kind == "precharge":
                assert c.hops[0][2] is Transition.RISE

    def test_evaluate_from_clock_falls_node(self, domino_mux, library):
        _, cs = _constraints(domino_mux, library)
        eval_from_clock = [
            c for c in cs.timing
            if c.kind == "evaluate" and c.hops[0][1] == "clk"
        ]
        assert eval_from_clock
        for c in eval_from_clock:
            assert c.hops[0][2] is Transition.FALL


class TestPhaseSegmentation:
    def test_comparator_splits_at_d1(self, database, library, tech):
        cmp32 = database.generate(
            "comparator/xorsum4", MacroSpec("comparator", 32), tech
        )
        spec = DelaySpec(data=1000.0, phase_budget=500.0)
        generator, cs = _constraints(cmp32, library, spec)
        segments = [c for c in cs.timing if c.kind == "segment"]
        assert segments
        assert all(c.spec == 500.0 for c in segments)

    def test_otb_adds_full_path_and_relaxes_segments(self, database, library, tech):
        cmp32 = database.generate(
            "comparator/xorsum4", MacroSpec("comparator", 32), tech
        )
        spec = DelaySpec(data=1000.0, phase_budget=500.0)
        _, cs_plain = _constraints(cmp32, library, spec, otb=0.0)
        _, cs_otb = _constraints(cmp32, library, spec, otb=100.0)
        plain_segments = [c for c in cs_plain.timing if c.kind == "segment"]
        otb_segments = [c for c in cs_otb.timing if c.kind == "segment"]
        assert all(c.spec == 500.0 for c in plain_segments)
        assert all(c.spec == 600.0 for c in otb_segments)
        otb_full = [c for c in cs_otb.timing if c.name.endswith(".otb")]
        assert otb_full
        assert all(c.spec == 1000.0 for c in otb_full)


class TestSlopeChaining:
    def test_slope_terms_in_delay(self, inverter_chain, library):
        """Later hops must carry slope terms from earlier stages: the path
        delay posynomial depends on upstream widths beyond pure RC."""
        generator, cs = _constraints(inverter_chain, library)
        (c,) = [c for c in cs.timing if c.hops[-1][2] is Transition.RISE]
        # Stage i2's own delay depends on P2/N2; chaining adds P0/N0/P1/N1.
        assert {"P0", "N0", "P1", "N1"} & c.delay.variables()

    def test_dedupe_identical_constraints(self, small_mux, library):
        generator, cs = _constraints(small_mux, library)
        keys = [(c.hops, c.kind, c.spec) for c in cs.timing]
        assert len(keys) == len(set(keys))
