"""Path extraction tests: enumeration, counting, representative extraction."""

import pytest

from repro.macros import MacroSpec
from repro.sizing import PathExtractor, longest_path_length
from repro.sizing.paths import PathExplosionError


class TestEnumeration:
    def test_chain_single_path_per_source(self, inverter_chain):
        paths = PathExtractor(inverter_chain).extract()
        assert len(paths) == 1
        (path,) = paths
        assert path.start_net == "in"
        assert path.end_net == "out"
        assert len(path) == 3

    def test_mux_paths(self, small_mux):
        paths = PathExtractor(small_mux).extract()
        # 4 data paths (in_i -> drv -> pass -> outdrv) and 4 select paths.
        assert len(paths) == 8
        starts = {p.start_net for p in paths}
        assert starts == {f"in{i}" for i in range(4)} | {f"s{i}" for i in range(4)}

    def test_count_matches_enumeration(self, small_mux, domino_mux):
        for circuit in (small_mux, domino_mux):
            extractor = PathExtractor(circuit)
            assert extractor.count() == len(extractor.extract())

    def test_count_matches_enumeration_on_adder(self, database, tech):
        adder = database.generate(
            "adder/static_ripple", MacroSpec("adder", 4), tech
        )
        extractor = PathExtractor(adder)
        assert extractor.count() == len(extractor.extract())

    def test_clock_paths_optional(self, domino_mux):
        extractor = PathExtractor(domino_mux)
        with_clock = extractor.count(include_clock=True)
        without = extractor.count(include_clock=False)
        assert with_clock > without

    def test_explosion_cap(self, database, tech):
        adder = database.generate(
            "adder/static_ripple", MacroSpec("adder", 8), tech
        )
        extractor = PathExtractor(adder, max_paths=5)
        with pytest.raises(PathExplosionError):
            extractor.extract()

    def test_paths_are_connected(self, small_mux):
        for path in PathExtractor(small_mux).extract():
            net = path.start_net
            for step in path.steps:
                stage = small_mux.stage(step.stage_name)
                pin = stage.pin(step.pin_name)
                assert pin.net.name == net
                net = stage.output.name
            assert net == path.end_net

    def test_classification_helpers(self, small_mux, domino_mux):
        paths = PathExtractor(small_mux).extract()
        select_paths = [p for p in paths if p.enters_via_select(small_mux)]
        assert len(select_paths) == 4
        clock_paths = [
            p
            for p in PathExtractor(domino_mux).extract()
            if p.starts_at_clock(domino_mux)
        ]
        assert clock_paths


class TestRepresentative:
    def test_representative_subset_covers_signatures(self, small_mux):
        from repro.sizing.pruning import path_signature

        full = PathExtractor(small_mux).extract()
        rep = PathExtractor(small_mux).extract_representative()
        full_sigs = {path_signature(small_mux, p) for p in full}
        rep_sigs = {path_signature(small_mux, p) for p in rep}
        assert rep_sigs == full_sigs
        assert len(rep) <= len(full)

    def test_representative_far_smaller_on_adder(self, database, tech):
        adder = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 16), tech
        )
        extractor = PathExtractor(adder)
        raw = extractor.count()
        rep = extractor.extract_representative()
        assert raw > 50 * len(rep)

    def test_representative_paths_are_valid_hops(self, database, tech):
        adder = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 16), tech
        )
        for path in PathExtractor(adder).extract_representative():
            for step in path.steps:
                stage = adder.stage(step.stage_name)
                stage.pin(step.pin_name)  # must exist


class TestDepth:
    def test_longest_path_length_chain(self, inverter_chain):
        assert longest_path_length(inverter_chain) == 3

    def test_longest_path_length_mux(self, small_mux):
        assert longest_path_length(small_mux) == 3  # drv -> pass -> outdrv
