"""Property-based GP solver tests: feasibility, optimality certificates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.posy import Monomial, Posynomial, var
from repro.sizing.gp import GeometricProgram

VARS = ("x", "y")


@st.composite
def random_gp(draw):
    """A random bounded GP over two variables with achievable constraints.

    Constraints are built to be satisfiable by construction: for a witness
    point w we only add constraints with f(w) <= 1.
    """
    witness = {
        name: draw(st.floats(min_value=0.5, max_value=5.0)) for name in VARS
    }
    objective = Posynomial.from_terms(
        [
            Monomial(
                draw(st.floats(min_value=0.1, max_value=10.0)),
                {name: draw(st.sampled_from([-1.0, 1.0, 2.0])) for name in VARS},
            )
            for _ in range(draw(st.integers(min_value=1, max_value=3)))
        ]
    )
    gp = GeometricProgram(objective)
    for name in VARS:
        gp.set_bounds(name, 0.1, 50.0)
    n_constraints = draw(st.integers(min_value=0, max_value=3))
    for i in range(n_constraints):
        expr = Posynomial.from_terms(
            [
                Monomial(
                    draw(st.floats(min_value=0.1, max_value=2.0)),
                    {
                        name: draw(st.sampled_from([-1.0, 0.0, 1.0]))
                        for name in VARS
                    },
                )
                for _ in range(draw(st.integers(min_value=1, max_value=2)))
            ]
        )
        value = expr.evaluate(witness)
        # Scale so the witness satisfies it with ~20% margin.
        gp.add_inequality(expr / (1.25 * value), f"c{i}")
    return gp, witness


@settings(max_examples=30, deadline=None)
@given(random_gp())
def test_solver_finds_feasible_point(problem):
    gp, witness = problem
    sol = gp.solve(initial=witness)
    assert sol.max_violation <= 5e-3


@settings(max_examples=30, deadline=None)
@given(random_gp())
def test_solution_no_worse_than_witness(problem):
    """The optimum must not exceed the known-feasible witness objective."""
    gp, witness = problem
    sol = gp.solve(initial=witness)
    if sol.status == "optimal":
        assert sol.objective <= gp.objective.evaluate(witness) * (1 + 1e-4)


@settings(max_examples=20, deadline=None)
@given(
    st.floats(min_value=0.2, max_value=5.0),
    st.floats(min_value=0.2, max_value=5.0),
)
def test_scaling_invariance(a, b):
    """Scaling the objective by a constant scales the optimum, same argmin."""
    base = GeometricProgram(a * var("x") + a / var("x"))
    base.set_bounds("x", 0.01, 100.0)
    scaled = GeometricProgram(a * b * var("x") + a * b / var("x"))
    scaled.set_bounds("x", 0.01, 100.0)
    s1, s2 = base.solve(), scaled.solve()
    assert s2.objective == pytest.approx(b * s1.objective, rel=1e-3)
    assert s2.env["x"] == pytest.approx(s1.env["x"], rel=1e-2)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=1.2, max_value=10.0))
def test_tightening_constraint_raises_objective(limit):
    """min x+y s.t. xy >= limit: tighter limit -> larger optimum (2*sqrt)."""
    gp = GeometricProgram(var("x") + var("y"))
    gp.add_upper_bound(limit / (var("x") * var("y")), 1.0, "prod")
    gp.set_bounds("x", 0.01, 1000.0)
    gp.set_bounds("y", 0.01, 1000.0)
    sol = gp.solve()
    assert sol.objective == pytest.approx(2.0 * limit ** 0.5, rel=1e-2)
