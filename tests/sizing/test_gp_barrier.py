"""Interior-point (log-barrier) GP solver tests — agreement with SLSQP."""

import pytest

from repro.posy import as_posynomial, var
from repro.sizing.gp import GeometricProgram, GPError


def _box(gp, *names, lo=0.01, hi=100.0):
    for name in names:
        gp.set_bounds(name, lo, hi)


class TestKnownOptima:
    def test_x_plus_inverse_x(self):
        gp = GeometricProgram(var("x") + 1.0 / var("x"))
        _box(gp, "x")
        sol = gp.solve(method="barrier")
        assert sol.env["x"] == pytest.approx(1.0, rel=1e-3)
        assert sol.objective == pytest.approx(2.0, rel=1e-4)

    def test_constrained_product(self):
        """min x+y s.t. xy >= 4 -> x = y = 2."""
        gp = GeometricProgram(var("x") + var("y"))
        gp.add_upper_bound(4.0 / (var("x") * var("y")), 1.0, "prod")
        _box(gp, "x", "y")
        sol = gp.solve(method="barrier")
        assert sol.env["x"] == pytest.approx(2.0, rel=1e-2)
        assert sol.env["y"] == pytest.approx(2.0, rel=1e-2)
        assert sol.max_violation <= 1e-4

    def test_bound_constrained(self):
        gp = GeometricProgram(as_posynomial(var("x") + var("y")))
        gp.set_bounds("x", 1.5, 10.0)
        gp.set_bounds("y", 2.5, 10.0)
        sol = gp.solve(method="barrier")
        assert sol.env["x"] == pytest.approx(1.5, rel=1e-2)
        assert sol.env["y"] == pytest.approx(2.5, rel=1e-2)

    def test_equality_as_penalty(self):
        gp = GeometricProgram(var("x") + var("y"))
        gp.add_equality(var("x"), 4.0 * var("y"))
        gp.set_bounds("x", 0.1, 100.0)
        gp.set_bounds("y", 1.0, 100.0)
        sol = gp.solve(method="barrier")
        assert sol.env["x"] == pytest.approx(4.0 * sol.env["y"], rel=1e-2)


class TestAgreementWithSLSQP:
    @pytest.mark.parametrize("limit", [2.0, 5.0, 20.0])
    def test_same_objective(self, limit):
        def build():
            gp = GeometricProgram(
                var("x") * var("y") + 3.0 / var("x") + 1.0 / var("y")
            )
            gp.add_upper_bound(limit / (var("x") * var("y")), 1.0, "prod")
            _box(gp, "x", "y")
            return gp

        a = build().solve(method="slsqp")
        b = build().solve(method="barrier")
        assert b.objective == pytest.approx(a.objective, rel=5e-3)

    def test_real_sizing_problem(self, small_mux, library):
        """The barrier solver closes the Figure-4 loop on a real macro GP."""
        from repro.sizing import DelaySpec, PathExtractor, SmartSizer, prune_paths
        from repro.sizing.constraints import ConstraintGenerator
        from repro.sizing.engine import nominal_delay

        spec = DelaySpec(data=nominal_delay(small_mux, library))
        paths = prune_paths(small_mux, PathExtractor(small_mux).extract()).paths
        generator = ConstraintGenerator(small_mux, library, spec)
        constraints = generator.generate(paths, {})
        sizer = SmartSizer(small_mux, library)
        gp = sizer._build_gp(constraints, {})

        slsqp = gp.solve()
        barrier = gp.solve(method="barrier")
        assert barrier.max_violation <= 1e-3
        assert barrier.objective == pytest.approx(slsqp.objective, rel=2e-2)


class TestErrors:
    def test_unknown_method(self):
        gp = GeometricProgram(var("x"))
        gp.set_bounds("x", 1.0, 2.0)
        with pytest.raises(GPError):
            gp.solve(method="genetic")


class TestEngineIntegration:
    def test_barrier_drives_full_sizing_loop(self, small_mux, library):
        """The whole Figure-4 loop converges with the interior-point solver
        and lands on (essentially) the SLSQP answer."""
        from repro.sizing import DelaySpec, SmartSizer
        from repro.sizing.engine import nominal_delay

        spec = DelaySpec(data=0.9 * nominal_delay(small_mux, library))
        slsqp = SmartSizer(small_mux, library).size(spec)
        barrier = SmartSizer(small_mux, library, gp_method="barrier").size(spec)
        assert barrier.converged
        assert barrier.area == pytest.approx(slsqp.area, rel=2e-2)
