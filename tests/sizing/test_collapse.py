"""RegularityCollapsedSizer: collapsed-vs-full equivalence, certification,
fallback, and the certificate-backed cache fast path."""

import pytest

from repro.cache import SizingCache
from repro.lint.solution import SolutionCertificateStore, check_certificate
from repro.macros.adder import StaticRippleAdder
from repro.macros.base import MacroSpec
from repro.macros.incrementor import RippleIncrementor
from repro.netlist.fingerprint import facet_fingerprints
from repro.sizing import DelaySpec, RegularityCollapsedSizer, SmartSizer
from repro.sizing.engine import nominal_delay


def _adder(tech, width, group):
    return StaticRippleAdder().build(
        MacroSpec("adder", width, params=(("label_group", group),)), tech
    )


def _incrementor(tech, width):
    return RippleIncrementor().build(
        MacroSpec("incrementor", width, params=(("label_group", 1),)), tech
    )


def _spec(circuit, library, factor=0.9):
    return DelaySpec(data=factor * nominal_delay(circuit, library))


@pytest.fixture(scope="module")
def adder64_runs(tech, library):
    """Collapsed and full solves of the 64-bit adder (4-bit label groups)."""
    circuit = _adder(tech, 64, 4)
    spec = _spec(circuit, library)
    collapsed = RegularityCollapsedSizer(circuit, library).size(spec)
    full = SmartSizer(circuit, library).size(spec)
    return circuit, spec, collapsed, full


class TestAdder64Equivalence:
    def test_collapse_reduces_variables(self, adder64_runs):
        _circuit, _spec, collapsed, _full = adder64_runs
        assert not collapsed.fallback, collapsed.fallback_reason
        assert collapsed.full_free == 128
        assert collapsed.collapsed_free < collapsed.full_free // 4
        assert collapsed.merged_labels == (
            collapsed.full_free - collapsed.collapsed_free
        )

    def test_replicated_widths_match_full_solve(self, adder64_runs):
        _circuit, _spec, collapsed, full = adder64_runs
        assert full.converged and collapsed.result.converged
        for name, width in full.widths.items():
            assert collapsed.result.widths[name] == pytest.approx(
                width, rel=1e-6
            ), name
        assert collapsed.result.area == pytest.approx(full.area, rel=1e-9)

    def test_certificate_verifies_against_problem(
        self, adder64_runs, library
    ):
        circuit, spec, collapsed, _full = adder64_runs
        cert = collapsed.certificate
        assert cert is not None and cert.ok
        assert cert.checks["OPT701"]["ok"]
        assert cert.checks["OPT703"]["ok"]
        assert cert.checks["OPT703"]["merged_labels"] == (
            collapsed.merged_labels
        )
        key = SmartSizer(circuit, library).cache_key(spec).key
        ok, reason = check_certificate(
            cert.to_payload(),
            key=key,
            env=collapsed.result.widths,
            tolerance=2.0,
            facets=facet_fingerprints(circuit),
        )
        assert ok, reason

    def test_full_sta_residual_within_tolerance(self, adder64_runs):
        _circuit, _spec, collapsed, _full = adder64_runs
        assert collapsed.result.worst_violation <= 2.0
        assert collapsed.result.realized  # measured, not copied


class TestPerBitCorpus:
    """Per-bit-labeled corpus: the GP optimum is flat along slice-symmetric
    directions, so widths agree only loosely while the objective agrees
    tightly — both bounds are asserted."""

    @pytest.mark.parametrize(
        "builder,width_tol,area_tol",
        [
            (lambda tech: _adder(tech, 16, 1), 0.5, 0.02),
            (lambda tech: _incrementor(tech, 16), 0.10, 1e-3),
        ],
        ids=["adder16_per_bit", "incrementor16_per_bit"],
    )
    def test_collapsed_tracks_full_solve(
        self, tech, library, builder, width_tol, area_tol
    ):
        circuit = builder(tech)
        spec = _spec(circuit, library)
        collapsed = RegularityCollapsedSizer(
            circuit, library, with_kkt=False
        ).size(spec)
        assert not collapsed.fallback, collapsed.fallback_reason
        assert collapsed.certificate is not None
        assert collapsed.certificate.ok
        full = SmartSizer(circuit, library).size(spec)
        assert full.converged
        worst = max(
            abs(collapsed.result.widths[name] - width) / width
            for name, width in full.widths.items()
        )
        assert worst <= width_tol
        assert (
            abs(collapsed.result.area - full.area) / full.area <= area_tol
        )


class TestFallback:
    def test_no_regularity_falls_back_to_full_solve(
        self, inverter_chain, library
    ):
        spec = _spec(inverter_chain, library)
        collapsed = RegularityCollapsedSizer(inverter_chain, library).size(
            spec
        )
        assert collapsed.fallback
        assert "no label regularity" in collapsed.fallback_reason
        assert collapsed.certificate is None
        assert collapsed.result.converged
        full = SmartSizer(inverter_chain, library).size(spec)
        for name, width in full.widths.items():
            assert collapsed.result.widths[name] == pytest.approx(
                width, rel=1e-6
            )


class TestCertificateCachePath:
    """Exact cache hits admitted on a verified certificate skip the STA
    re-run; stale or absent certificates fall back to the verified path."""

    @pytest.fixture()
    def solved_cache(self, tech, library, tmp_path):
        circuit = _adder(tech, 8, 1)
        spec = _spec(circuit, library)
        certs = SolutionCertificateStore(str(tmp_path / "certs.jsonl"))
        cache = SizingCache(certificates=certs)
        cold = RegularityCollapsedSizer(
            circuit, library, cache=cache, certificates=certs
        ).size(spec)
        assert not cold.fallback and cold.certificate is not None
        return circuit, spec, cache, certs

    def test_cold_solve_publishes_entry_and_certificate(self, solved_cache):
        circuit, spec, cache, certs = solved_cache
        assert len(certs) == 1
        cert = next(iter(certs.entries()))
        assert cert["circuit"] == circuit.name
        assert cache.get(cert["key"]) is not None

    def test_warm_hit_admitted_on_certificate(
        self, solved_cache, library
    ):
        circuit, spec, cache, certs = solved_cache
        warm = SmartSizer(circuit, library, cache=cache).size(spec)
        assert warm.cache_hit == "exact-cert"
        assert warm.converged and warm.iterations == 0
        assert cache.stats.cert_hits == 1
        assert cache.stats.exact_hits == 1
        entry = cache.get(next(iter(certs.entries()))["key"])
        for name, width in entry["env"].items():
            assert warm.widths[name] == pytest.approx(width, rel=1e-9)

    def test_tampered_entry_falls_back_to_sta_verify(
        self, solved_cache, library
    ):
        circuit, spec, cache, certs = solved_cache
        key = next(iter(certs.entries()))["key"]
        entry = dict(cache.get(key))
        entry["env"] = {
            name: width * 1.0001 for name, width in entry["env"].items()
        }
        cache.put(entry)
        result = SmartSizer(circuit, library, cache=cache).size(spec)
        # Digest mismatch rejects the certificate; the nudged env still
        # passes the full STA re-check, so the ordinary exact path serves.
        assert result.cache_hit == "exact"
        assert cache.stats.cert_hits == 0
        assert cache.stats.exact_hits == 1

    def test_plain_cache_without_certificates_unchanged(
        self, tech, library
    ):
        circuit = _adder(tech, 8, 1)
        spec = _spec(circuit, library)
        cache = SizingCache()
        SmartSizer(circuit, library, cache=cache).size(spec)
        warm = SmartSizer(circuit, library, cache=cache).size(spec)
        assert warm.cache_hit == "exact"
        assert cache.stats.cert_hits == 0

    def test_engine_issues_certificate_after_cold_solve(
        self, tech, library, tmp_path
    ):
        """A converged SmartSizer solve self-issues an OPT705-admissible
        certificate when the cache carries a certificate store."""
        circuit = _adder(tech, 8, 1)
        spec = _spec(circuit, library)
        certs = SolutionCertificateStore(str(tmp_path / "c.jsonl"))
        cache = SizingCache(certificates=certs)
        SmartSizer(circuit, library, cache=cache).size(spec)
        assert len(certs) == 1
        warm = SmartSizer(circuit, library, cache=cache).size(spec)
        assert warm.cache_hit == "exact-cert"
