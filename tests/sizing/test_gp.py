"""GP solver tests: known-optimum problems, constraints, infeasibility."""


import pytest

from repro.posy import as_posynomial, const, var
from repro.sizing.gp import GeometricProgram, GPError, GPInfeasibleError


class TestKnownOptima:
    def test_unconstrained_hits_lower_bounds(self):
        gp = GeometricProgram(as_posynomial(var("x") + var("y")))
        gp.set_bounds("x", 1.0, 10.0)
        gp.set_bounds("y", 2.0, 10.0)
        sol = gp.solve()
        assert sol.optimal
        assert sol.env["x"] == pytest.approx(1.0, rel=1e-3)
        assert sol.env["y"] == pytest.approx(2.0, rel=1e-3)

    def test_x_plus_inverse_x(self):
        """min x + 1/x has optimum 2 at x = 1."""
        gp = GeometricProgram(var("x") + 1.0 / var("x"))
        gp.set_bounds("x", 0.01, 100.0)
        sol = gp.solve()
        assert sol.env["x"] == pytest.approx(1.0, rel=1e-3)
        assert sol.objective == pytest.approx(2.0, rel=1e-4)

    def test_constrained_area_problem(self):
        """min x*y subject to 1/(x*y) <= 1 -> optimum x*y = 1."""
        gp = GeometricProgram(as_posynomial(var("x") * var("y")))
        gp.add_inequality(1.0 / (var("x") * var("y")), "min_area")
        gp.set_bounds("x", 0.1, 10.0)
        gp.set_bounds("y", 0.1, 10.0)
        sol = gp.solve()
        assert sol.objective == pytest.approx(1.0, rel=1e-3)

    def test_equality_constraint(self):
        """min x + y s.t. x == 4y -> x = 4 y_lb."""
        gp = GeometricProgram(var("x") + var("y"))
        gp.add_equality(var("x"), 4.0 * var("y"))
        gp.set_bounds("x", 0.1, 100.0)
        gp.set_bounds("y", 1.0, 100.0)
        sol = gp.solve()
        assert sol.env["x"] == pytest.approx(4.0 * sol.env["y"], rel=1e-4)
        assert sol.env["y"] == pytest.approx(1.0, rel=1e-3)

    def test_classic_two_term_tradeoff(self):
        """min 1/x + x^2: d/dx = -1/x^2 + 2x = 0 -> x = (1/2)^(1/3)."""
        gp = GeometricProgram(1.0 / var("x") + var("x") ** 2)
        gp.set_bounds("x", 0.01, 100.0)
        sol = gp.solve()
        assert sol.env["x"] == pytest.approx(0.5 ** (1.0 / 3.0), rel=1e-3)


class TestUpperBoundHelper:
    def test_add_upper_bound_scales(self):
        gp = GeometricProgram(var("x"))
        gp.add_upper_bound(var("y"), 5.0, "cap")
        gp.set_bounds("x", 1.0, 2.0)
        gp.set_bounds("y", 0.1, 100.0)
        sol = gp.solve()
        assert sol.env["y"] <= 5.0 + 1e-6

    def test_nonpositive_limit_rejected(self):
        gp = GeometricProgram(var("x"))
        with pytest.raises(GPError):
            gp.add_upper_bound(var("x"), 0.0)


class TestDegenerateInputs:
    def test_empty_objective_rejected(self):
        from repro.posy import Posynomial

        with pytest.raises(GPError):
            GeometricProgram(Posynomial.zero())

    def test_trivial_constant_constraint_ok(self):
        gp = GeometricProgram(var("x"))
        gp.add_inequality(as_posynomial(0.5), "ok")  # 0.5 <= 1 holds
        gp.set_bounds("x", 1.0, 2.0)
        assert gp.solve().optimal

    def test_constant_violated_constraint_raises(self):
        gp = GeometricProgram(var("x"))
        with pytest.raises(GPInfeasibleError):
            gp.add_inequality(as_posynomial(2.0), "bad")

    def test_constant_equality_consistent(self):
        gp = GeometricProgram(var("x"))
        gp.add_equality(const(2.0), const(2.0))  # fine, drops out
        gp.set_bounds("x", 1.0, 2.0)
        assert gp.solve().optimal

    def test_constant_equality_inconsistent(self):
        gp = GeometricProgram(var("x"))
        with pytest.raises(GPInfeasibleError):
            gp.add_equality(const(2.0), const(3.0))

    def test_invalid_bounds(self):
        gp = GeometricProgram(var("x"))
        with pytest.raises(GPError):
            gp.set_bounds("x", -1.0, 2.0)
        with pytest.raises(GPError):
            gp.set_bounds("x", 3.0, 2.0)


class TestInfeasibility:
    def test_box_vs_constraint_conflict(self):
        """x <= 0.5 with bounds x >= 1 is infeasible."""
        gp = GeometricProgram(var("x"))
        gp.add_upper_bound(var("x"), 0.5, "tight")
        gp.set_bounds("x", 1.0, 10.0)
        with pytest.raises(GPInfeasibleError):
            gp.solve()

    def test_two_conflicting_constraints(self):
        gp = GeometricProgram(var("x") + var("y"))
        gp.add_upper_bound(var("x") * var("y"), 0.5, "small")
        gp.add_upper_bound(4.0 / (var("x") * var("y")), 1.0, "big")  # xy >= 4
        gp.set_bounds("x", 0.1, 10.0)
        gp.set_bounds("y", 0.1, 10.0)
        with pytest.raises(GPInfeasibleError):
            gp.solve()


class TestSolutionIntrospection:
    def _solved(self):
        gp = GeometricProgram(var("x") + var("y"))
        gp.add_upper_bound(1.0 / (var("x") * var("y")), 1.0, "area")
        gp.set_bounds("x", 0.1, 10.0)
        gp.set_bounds("y", 0.1, 10.0)
        return gp, gp.solve()

    def test_margins(self):
        gp, sol = self._solved()
        margins = sol.constraint_margins(gp)
        assert set(margins) == {"area"}
        assert margins["area"] >= -1e-4

    def test_tight_constraints(self):
        gp, sol = self._solved()
        assert "area" in sol.tight_constraints(gp, tol=1e-2)

    def test_no_variables(self):
        gp = GeometricProgram(as_posynomial(3.0))
        sol = gp.solve()
        assert sol.optimal
        assert sol.objective == pytest.approx(3.0)

    def test_warm_start_used(self):
        gp = GeometricProgram(var("x") + 1.0 / var("x"))
        gp.set_bounds("x", 0.01, 100.0)
        sol = gp.solve(initial={"x": 1.0})
        assert sol.env["x"] == pytest.approx(1.0, rel=1e-3)


class TestWarmStartRobustness:
    """``initial`` comes from caches and earlier iterations, so the solver
    must tolerate stale names, out-of-box values, and junk."""

    def _gp(self):
        gp = GeometricProgram(var("x") + 1.0 / var("x"))
        gp.set_bounds("x", 0.5, 100.0)
        return gp

    def test_unknown_names_dropped(self):
        sol = self._gp().solve(initial={"x": 1.0, "gone_label": 7.0})
        assert sol.optimal
        assert sol.env["x"] == pytest.approx(1.0, rel=1e-3)

    def test_out_of_bounds_value_clamped(self):
        # 1e6 is far above the upper bound; the solve must still succeed
        sol = self._gp().solve(initial={"x": 1e6})
        assert sol.optimal
        assert 0.5 - 1e-6 <= sol.env["x"] <= 100.0 + 1e-6

    def test_below_lower_bound_clamped(self):
        sol = self._gp().solve(initial={"x": 1e-9})
        assert sol.optimal

    def test_nonfinite_values_ignored(self):
        sol = self._gp().solve(
            initial={"x": float("nan"), "y": float("inf")}
        )
        assert sol.optimal
        assert sol.env["x"] == pytest.approx(1.0, rel=1e-3)

    def test_non_numeric_values_ignored(self):
        sol = self._gp().solve(initial={"x": "not-a-width", "y": None})
        assert sol.optimal

    def test_negative_values_ignored(self):
        sol = self._gp().solve(initial={"x": -3.0})
        assert sol.optimal
