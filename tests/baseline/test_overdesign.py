"""Over-design baseline sizer tests."""

import pytest

from repro.baseline import OverdesignSizer
from repro.macros import MacroSpec
from repro.sim import StaticTimingAnalyzer


class TestBasics:
    def test_invalid_margin(self, small_mux, library):
        with pytest.raises(ValueError):
            OverdesignSizer(small_mux, library, margin=0.0)

    def test_result_fields(self, small_mux, library):
        result = OverdesignSizer(small_mux, library).size()
        assert result.area > 0
        assert result.realized_delay > 0
        assert set(result.widths) == set(small_mux.size_table.free_names())
        assert set(result.resolved) == set(small_mux.size_table.names())

    def test_widths_within_bounds(self, small_mux, library):
        result = OverdesignSizer(small_mux, library).size()
        for name, width in result.widths.items():
            var = small_mux.size_table[name]
            assert var.lower <= width <= var.upper

    def test_realized_delay_matches_sta(self, small_mux, library):
        result = OverdesignSizer(small_mux, library).size()
        report = StaticTimingAnalyzer(small_mux, library).analyze(result.widths)
        assert report.worst(small_mux.primary_outputs) == pytest.approx(
            result.realized_delay
        )


class TestOverdesignCharacter:
    def test_larger_margin_more_area(self, small_mux, library):
        lean = OverdesignSizer(small_mux, library, margin=1.0).size()
        fat = OverdesignSizer(small_mux, library, margin=2.0).size()
        assert fat.area > lean.area

    def test_larger_margin_not_slower(self, small_mux, library):
        lean = OverdesignSizer(small_mux, library, margin=1.0).size()
        fat = OverdesignSizer(small_mux, library, margin=2.0).size()
        assert fat.realized_delay <= lean.realized_delay * 1.05

    def test_symmetric_pn_habit(self, inverter_chain, library):
        result = OverdesignSizer(inverter_chain, library).size()
        beta = library.tech.beta
        # Each stage's P/N ratio follows the mobility ratio.
        for stage_idx in range(3):
            wp = result.resolved[f"P{stage_idx}"]
            wn = result.resolved[f"N{stage_idx}"]
            if wn > library.tech.min_width * 1.01:
                assert wp / wn == pytest.approx(beta, rel=0.05)

    def test_domino_full_strength_clock_devices(self, domino_mux, library):
        result = OverdesignSizer(domino_mux, library).size()
        assert result.clock_load > 0
        # Precharge is at least as big as the data devices, foot bigger.
        assert result.resolved["P1"] >= result.resolved["N1"]
        assert result.resolved["N2"] > result.resolved["N1"]

    def test_shared_labels_take_worst_case(self, database, library, tech):
        """In a strong mux all pass gates share N2; its width must serve the
        worst-loaded instance."""
        mux = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 8, output_load=60.0), tech
        )
        result = OverdesignSizer(mux, library).size()
        assert result.resolved["N2"] > library.tech.min_width
