"""Pareto-frontier exploration tests (area vs clock load)."""

import pytest

from repro import DesignConstraints, MacroSpec, SmartAdvisor
from repro.core.explore import ParetoPoint, pareto_frontier


@pytest.fixture(scope="module")
def advisor():
    return SmartAdvisor()


@pytest.fixture(scope="module")
def frontier(advisor):
    return pareto_frontier(
        advisor,
        MacroSpec("mux", 8, output_load=30.0),
        DesignConstraints(delay=360.0),
        topologies=["mux/unsplit_domino", "mux/strong_mutex_passgate"],
        clock_weights=(0.0, 1.0, 4.0),
    )


class TestParetoPoint:
    def test_dominates(self):
        a = ParetoPoint("t", 1.0, area=10.0, clock_load=5.0, converged=True)
        b = ParetoPoint("t", 1.0, area=12.0, clock_load=6.0, converged=True)
        c = ParetoPoint("t", 1.0, area=8.0, clock_load=7.0, converged=True)
        assert a.dominates(b)
        assert not a.dominates(c)
        assert not c.dominates(a)
        assert not a.dominates(a)


class TestFrontier:
    def test_nonempty_and_converged(self, frontier):
        assert frontier
        assert all(p.converged for p in frontier)

    def test_no_dominated_points(self, frontier):
        for p in frontier:
            assert not any(q.dominates(p) for q in frontier if q is not p)

    def test_sorted_by_area(self, frontier):
        areas = [p.area for p in frontier]
        assert areas == sorted(areas)

    def test_frontier_monotone(self, frontier):
        """Along the frontier, more area must buy less clock load."""
        for a, b in zip(frontier, frontier[1:]):
            assert b.clock_load <= a.clock_load + 1e-9

    def test_static_topology_anchors_zero_clock(self, frontier):
        """The pass-gate mux has no clock load; if it appears it must be the
        zero-clock anchor of the frontier."""
        static = [p for p in frontier if "passgate" in p.topology]
        for p in static:
            assert p.clock_load == 0.0

    def test_infeasible_budget_empty(self, advisor):
        result = pareto_frontier(
            advisor,
            MacroSpec("mux", 8, output_load=30.0),
            DesignConstraints(delay=5.0),
            topologies=["mux/unsplit_domino"],
            clock_weights=(0.0,),
        )
        assert result == []
