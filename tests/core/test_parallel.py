"""Process-pool advisor tests: determinism, trace grafting, fallback."""

import pytest

from repro.cache import SizingCache
from repro.core.advisor import SmartAdvisor
from repro.core.constraints import DesignConstraints
from repro.macros import MacroSpec
from repro.obs import trace
from repro.parallel import (
    CandidateTask,
    build_grid,
    run_candidates,
    run_sweep,
)


@pytest.fixture
def spec():
    return MacroSpec("mux", 4, output_load=20.0)


@pytest.fixture
def constraints():
    return DesignConstraints(delay=400.0)


class TestParallelAdvise:
    def test_matches_sequential_exactly(self, database, spec, constraints):
        seq = SmartAdvisor(database=database).advise(
            spec, constraints, workers=1
        )
        par = SmartAdvisor(database=database).advise(
            spec, constraints, workers=4
        )
        assert [c.topology for c in par.candidates] == [
            c.topology for c in seq.candidates
        ]
        for a, b in zip(seq.candidates, par.candidates):
            assert a.feasible == b.feasible
            assert a.reason == b.reason
            if a.sizing is not None:
                assert b.sizing is not None
                assert a.sizing.widths == b.sizing.widths
                assert a.sizing.iterations == b.sizing.iterations
        assert par.best.topology == seq.best.topology

    def test_worker_traces_grafted(self, database, spec, constraints):
        with trace.tracing_scope() as tracer:
            SmartAdvisor(database=database).advise(
                spec, constraints, workers=2
            )
        names = [s.name for s in tracer.spans]
        # spans recorded inside worker processes must appear in the parent
        # trace, nested under the advise span
        assert "gp_solve" in names
        assert "advise" in names
        advise_span = next(s for s in tracer.spans if s.name == "advise")
        topology_spans = [s for s in tracer.spans if s.name == "topology"]
        assert topology_spans
        assert all(s.parent_id == advise_span.span_id for s in topology_spans)
        assert all(s.depth == advise_span.depth + 1 for s in topology_spans)

    def test_worker_cache_entries_merged(self, database, spec, constraints):
        cache = SizingCache()
        advisor = SmartAdvisor(database=database, cache=cache)
        report = advisor.advise(spec, constraints, workers=2)
        assert len(cache) >= len(report.feasible)
        assert cache.stats.stores >= len(report.feasible)

    def test_single_worker_stays_inline(
        self, database, spec, constraints, monkeypatch
    ):
        import repro.parallel.pool as pool_mod

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool must not be used for workers=1")

        monkeypatch.setattr(pool_mod, "run_candidates", boom)
        report = SmartAdvisor(database=database).advise(
            spec, constraints, workers=1
        )
        assert report.best is not None


class TestFallback:
    def test_unpicklable_inputs_return_none(self, database, spec, constraints):
        tasks = [
            CandidateTask(
                topology="mux/tristate",
                spec=spec,
                constraints=constraints,
            )
        ]
        outcomes = run_candidates(
            tasks,
            workers=2,
            database=database,
            tech=lambda: None,  # unpicklable on purpose
        )
        assert outcomes is None

    def test_advise_falls_back_inline(
        self, database, spec, constraints, monkeypatch
    ):
        import repro.parallel.pool as pool_mod

        monkeypatch.setattr(
            pool_mod, "run_candidates", lambda *a, **k: None
        )
        report = SmartAdvisor(database=database).advise(
            spec, constraints, workers=4
        )
        assert report.best is not None
        assert len(report.candidates) == 5


class TestSweep:
    def test_grid_order_deterministic(self):
        grid = build_grid(["mux"], [8, 4], [400.0, 300.0])
        assert [(p.width, p.delay) for p in grid] == [
            (8, 400.0), (8, 300.0), (4, 400.0), (4, 300.0)
        ]

    def test_parallel_sweep_matches_sequential(self, database, tech):
        grid = build_grid(["mux"], [4], [300.0, 400.0])
        seq = run_sweep(grid, workers=1, database=database, tech=tech)
        par = run_sweep(grid, workers=2, database=database, tech=tech)
        assert [p.best_topology for p in par.points] == [
            p.best_topology for p in seq.points
        ]
        assert [p.best_scalar for p in par.points] == pytest.approx(
            [p.best_scalar for p in seq.points]
        )

    def test_second_pass_mostly_exact_hits(self, database, tech, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        grid = build_grid(["mux"], [4], [300.0, 400.0])
        cold = run_sweep(
            grid, workers=2, cache=SizingCache(path),
            database=database, tech=tech,
        )
        assert cold.cache_stats["exact_hits"] == 0
        warm = run_sweep(
            grid, workers=2, cache=SizingCache(path),
            database=database, tech=tech,
        )
        assert warm.cache_stats["exact_hits"] > 0
        assert warm.cache_stats["hit_rate"] >= 0.8
        assert [p.best_scalar for p in warm.points] == pytest.approx(
            [p.best_scalar for p in cold.points], abs=1e-9
        )

    def test_artifact_shape(self, database, tech):
        import json

        from repro.obs import json_sanitize

        grid = build_grid(["mux"], [4], [400.0])
        result = run_sweep(grid, workers=1, database=database, tech=tech)
        blob = json.dumps(json_sanitize(result.to_json()), allow_nan=False)
        parsed = json.loads(blob)
        assert parsed["format"] == "smart-sweep/1"
        assert parsed["points"][0]["best"]
        assert result.complete
