"""AdvisorReport / CandidateResult rendering and ranking edge cases."""

import pytest

from repro.core.cost import CostBreakdown
from repro.core.report import AdvisorReport, CandidateResult
from repro.sizing.engine import SizingResult


def _sizing(converged=True, area=100.0):
    return SizingResult(
        circuit_name="c",
        widths={},
        resolved={},
        converged=converged,
        iterations=2,
        area=area,
        clock_load=0.0,
        worst_violation=0.0,
        realized={"p0": 100.0},
        specs={"p0": 110.0},
    )


def _candidate(name, scalar, converged=True, feasible=True, reason=""):
    cost = CostBreakdown(area=scalar, clock_load=0.0, power=scalar, scalar=scalar)
    return CandidateResult(
        topology=name,
        description=name,
        feasible=feasible,
        sizing=_sizing(converged=converged, area=scalar) if feasible else None,
        cost=cost if feasible else None,
        reason=reason,
    )


class TestRanking:
    def test_best_picks_lowest_scalar(self):
        report = AdvisorReport(macro="m", metric="area")
        report.candidates = [
            _candidate("b", 200.0),
            _candidate("a", 100.0),
            _candidate("c", 300.0),
        ]
        assert report.best.topology == "a"

    def test_nonconverged_excluded_from_best(self):
        report = AdvisorReport(macro="m", metric="area")
        report.candidates = [
            _candidate("cheap-but-misses", 50.0, converged=False),
            _candidate("honest", 100.0),
        ]
        assert report.best.topology == "honest"

    def test_empty_report(self):
        report = AdvisorReport(macro="m", metric="area")
        assert report.best is None
        assert report.feasible == []
        assert "best:" not in report.render()

    def test_ranked_puts_infeasible_last(self):
        report = AdvisorReport(macro="m", metric="area")
        report.candidates = [
            _candidate("bad", 0.0, feasible=False, reason="pruned"),
            _candidate("good", 100.0),
        ]
        ranked = report.ranked()
        assert ranked[0].topology == "good"
        assert ranked[-1].topology == "bad"


class TestRendering:
    def test_render_shows_reason_for_infeasible(self):
        report = AdvisorReport(macro="m", metric="area")
        report.candidates = [
            _candidate("bad", 0.0, feasible=False, reason="pruned: too slow")
        ]
        text = report.render()
        assert "pruned: too slow" in text
        assert "infeasible" in text

    def test_render_marks_nonconverged(self):
        report = AdvisorReport(macro="m", metric="area")
        report.candidates = [_candidate("x", 100.0, converged=False)]
        assert "no-conv" in report.render()


class TestSizingResultAccessors:
    def test_worst_slack(self):
        s = _sizing()
        assert s.worst_slack == pytest.approx(-s.worst_violation)

    def test_realized_delay_filter(self):
        s = _sizing()
        s.realized = {"p0.data": 90.0, "p1.control": 120.0}
        assert s.realized_delay() == pytest.approx(120.0)
        assert s.realized_delay("data") == pytest.approx(90.0)
        assert s.realized_delay("missing") == 0.0
