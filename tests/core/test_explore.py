"""Exploration tests: area-delay curves (Fig 6) and topology sweeps (Fig 7)."""

import pytest

from repro import DesignConstraints, MacroSpec, SmartAdvisor, area_delay_curve
from repro.core.explore import explore_topologies
from repro.sizing.engine import nominal_delay


@pytest.fixture(scope="module")
def advisor():
    return SmartAdvisor()


@pytest.fixture(scope="module")
def mux_curve(advisor, library):
    spec = MacroSpec("mux", 4, output_load=30.0)
    circuit = advisor.database.generate(
        "mux/strong_mutex_passgate", spec, advisor.tech
    )
    base = DesignConstraints(delay=0.85 * nominal_delay(circuit, library))
    return area_delay_curve(
        advisor,
        "mux/strong_mutex_passgate",
        spec,
        base,
        scales=(0.8, 1.0, 1.3, 1.6),
    )


class TestTradeoffCurve:
    def test_all_points_converge(self, mux_curve):
        assert all(p.converged for p in mux_curve.points)

    def test_area_monotone_decreasing_in_delay(self, mux_curve):
        assert mux_curve.is_monotone()

    def test_tightest_point_most_area(self, mux_curve):
        points = sorted(mux_curve.points, key=lambda p: p.delay_scale)
        assert points[0].area == max(p.area for p in mux_curve.points)

    def test_normalization(self, mux_curve):
        normalized = mux_curve.normalized(reference_scale=1.0)
        ref = [p for p in normalized.points if p.delay_scale == 1.0][0]
        assert ref.area == pytest.approx(1.0)
        assert ref.spec_delay == pytest.approx(1.0)

    def test_infeasible_points_marked(self, advisor):
        spec = MacroSpec("mux", 4, output_load=30.0)
        curve = area_delay_curve(
            advisor,
            "mux/strong_mutex_passgate",
            spec,
            DesignConstraints(delay=400.0),
            scales=(0.01, 1.0),
        )
        by_scale = {p.delay_scale: p for p in curve.points}
        assert not by_scale[0.01].converged
        assert by_scale[1.0].converged


class TestTopologyExploration:
    def test_figure7_style_sweep(self, advisor):
        """All three comparator topologies sized at one constraint point."""
        circuit = advisor.database.generate(
            "comparator/xorsum2", MacroSpec("comparator", 32), advisor.tech
        )

        nom = nominal_delay(circuit, advisor.library)
        report = explore_topologies(
            advisor,
            MacroSpec("comparator", 32, output_load=20.0),
            DesignConstraints(delay=nom, phase_budget=0.6 * nom, cost="area+clock"),
        )
        assert len(report.candidates) == 3
        assert report.best is not None

    def test_exploration_at_different_constraints_can_flip(self, advisor):
        """"Under different design constraints, the original topology may not
        be the optimal one" — at minimum, rankings are recomputed per point."""
        spec = MacroSpec("mux", 8, output_load=10.0)
        loose = explore_topologies(
            advisor, spec, DesignConstraints(delay=900.0, cost="area")
        )
        tight = explore_topologies(
            advisor, spec, DesignConstraints(delay=260.0, cost="area")
        )
        assert loose.best is not None and tight.best is not None
        loose_feasible = {c.topology for c in loose.feasible}
        tight_feasible = {c.topology for c in tight.feasible}
        assert tight_feasible <= loose_feasible
        assert len(tight_feasible) < len(loose_feasible)
