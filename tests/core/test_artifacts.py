"""Sizing-artifact round-trip tests."""

import json

import pytest

from repro.core.artifacts import (
    ArtifactError,
    apply_sizing,
    load_sizing,
    save_sizing,
    spec_from_payload,
)
from repro.macros import MacroSpec
from repro.sim import StaticTimingAnalyzer
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


@pytest.fixture
def sized(small_mux, library):
    spec = DelaySpec(data=nominal_delay(small_mux, library))
    result = SmartSizer(small_mux, library).size(spec)
    return small_mux, spec, result


class TestRoundTrip:
    def test_save_load_apply(self, sized, tmp_path, database, tech, library):
        circuit, spec, result = sized
        path = tmp_path / "mux4.sizing.json"
        save_sizing(str(path), circuit, result, spec)

        payload = load_sizing(str(path))
        assert payload["circuit"] == circuit.name
        assert payload["result"]["converged"]

        # A freshly generated identical macro accepts the artifact and times
        # identically.
        fresh = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0), tech
        )
        widths = apply_sizing(fresh, payload)
        t_orig = StaticTimingAnalyzer(circuit, library).analyze(
            result.resolved
        ).worst(circuit.primary_outputs)
        t_fresh = StaticTimingAnalyzer(fresh, library).analyze(widths).worst(
            fresh.primary_outputs
        )
        assert t_fresh == pytest.approx(t_orig, rel=1e-9)

    def test_spec_round_trip(self, sized, tmp_path):
        circuit, spec, result = sized
        path = tmp_path / "a.json"
        save_sizing(str(path), circuit, result, spec)
        loaded = spec_from_payload(load_sizing(str(path)))
        assert loaded.data == pytest.approx(spec.data)
        assert loaded.input_slope == spec.input_slope

    def test_spec_absent(self, sized, tmp_path):
        circuit, _spec, result = sized
        path = tmp_path / "b.json"
        save_sizing(str(path), circuit, result)
        assert spec_from_payload(load_sizing(str(path))) is None


class TestValidation:
    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ArtifactError):
            load_sizing(str(path))

    def test_missing_widths_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "smart-sizing/1"}))
        with pytest.raises(ArtifactError):
            load_sizing(str(path))

    def test_label_mismatch_rejected(self, sized, tmp_path, database, tech):
        circuit, spec, result = sized
        path = tmp_path / "c.json"
        save_sizing(str(path), circuit, result, spec)
        payload = load_sizing(str(path))
        other = database.generate(
            "mux/tristate", MacroSpec("mux", 4, output_load=30.0), tech
        )
        with pytest.raises(ArtifactError):
            apply_sizing(other, payload)

    def test_out_of_bounds_rejected(self, sized, tmp_path):
        circuit, spec, result = sized
        path = tmp_path / "d.json"
        save_sizing(str(path), circuit, result, spec)
        payload = load_sizing(str(path))
        payload["widths"]["N2"] = 1e9
        with pytest.raises(ArtifactError):
            apply_sizing(circuit, payload)
