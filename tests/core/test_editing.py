"""Macro editing tests: condition logic merge, size pinning, load retarget."""

import pytest

from repro.core.editing import (
    merge_condition_gate,
    pin_sizes,
    retarget_load,
    unpin_sizes,
)
from repro.macros import MacroSpec
from repro.netlist import StageKind, validate_circuit
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


@pytest.fixture
def mux(database, tech):
    return database.generate(
        "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0), tech
    )


class TestMergeConditionGate:
    def test_nand_merge(self, mux):
        stage = merge_condition_gate(
            mux, "s0", "nand", ["cond_a", "cond_b"], "PC", "NC"
        )
        assert stage.kind is StageKind.NAND
        assert "s0" not in mux.primary_inputs
        assert "cond_a" in mux.primary_inputs
        assert validate_circuit(mux).ok

    def test_merged_macro_still_sizes(self, mux, library):
        merge_condition_gate(mux, "s0", "nand", ["ca", "cb"], "PC", "NC")
        nom = nominal_delay(mux, library)
        result = SmartSizer(mux, library).size(DelaySpec(data=nom))
        assert result.converged
        assert "PC" in result.widths

    def test_inv_merge(self, mux):
        stage = merge_condition_gate(mux, "in3", "inv", ["in3_n"], "PI", "NI")
        assert stage.kind is StageKind.INV

    def test_inv_needs_one_input(self, mux):
        with pytest.raises(ValueError):
            merge_condition_gate(mux, "in3", "inv", ["x", "y"], "PI", "NI")

    def test_nand_needs_two_inputs(self, mux):
        with pytest.raises(ValueError):
            merge_condition_gate(mux, "s0", "nand", ["only"], "PC", "NC")

    def test_unknown_kind_rejected(self, mux):
        with pytest.raises(ValueError):
            merge_condition_gate(mux, "s0", "xor3", ["a", "b"], "PC", "NC")

    def test_non_input_rejected(self, mux):
        with pytest.raises(ValueError):
            merge_condition_gate(mux, "merge", "nand", ["a", "b"], "PC", "NC")


class TestPinning:
    def test_pin_and_unpin(self, mux):
        pin_sizes(mux, {"N2": 6.0})
        assert mux.size_table["N2"].pinned == 6.0
        unpin_sizes(mux, ["N2"])
        assert mux.size_table["N2"].free

    def test_pinned_survives_sizing(self, mux, library):
        pin_sizes(mux, {"P1": 9.0})
        nom = nominal_delay(mux, library)
        result = SmartSizer(mux, library).size(DelaySpec(data=nom))
        assert result.resolved["P1"] == pytest.approx(9.0)


class TestRetargetLoad:
    def test_load_changes(self, mux):
        retarget_load(mux, "out", 120.0)
        assert mux.net("out").external_load == 120.0

    def test_stage_pins_rebound(self, mux):
        retarget_load(mux, "out", 120.0)
        # The driving stage's output must be the replacement Net object.
        driver = mux.driver_of("out")
        assert driver.output.external_load == 120.0

    def test_bigger_load_more_area(self, mux, library, database, tech):
        nom = nominal_delay(mux, library)
        small = SmartSizer(mux, library).size(DelaySpec(data=nom))
        heavy = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0), tech
        )
        retarget_load(heavy, "out", 150.0)
        big = SmartSizer(heavy, library).size(DelaySpec(data=nom))
        assert big.area > small.area

    def test_non_output_rejected(self, mux):
        with pytest.raises(ValueError):
            retarget_load(mux, "merge", 50.0)
