"""SMART advisor (Figure-1 flow) tests."""

import pytest

from repro import DesignConstraints, MacroSpec, SmartAdvisor
from repro.core.advisor import PRUNE_FACTOR
from repro.sizing.engine import nominal_delay


@pytest.fixture(scope="module")
def advisor():
    return SmartAdvisor()


class TestAdvise:
    def test_mux_report_ranks_candidates(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0, cost="area"),
        )
        assert report.candidates
        assert report.best is not None
        ranked = report.ranked()
        feasible = [c for c in ranked if c.feasible and c.converged]
        costs = [c.cost.scalar for c in feasible]
        assert costs == sorted(costs)

    def test_best_is_lowest_cost(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0, cost="area"),
        )
        best = report.best
        for cand in report.feasible:
            assert best.cost.scalar <= cand.cost.scalar

    def test_impossible_budget_all_infeasible(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=3.0, cost="area"),
        )
        assert report.best is None

    def test_explicit_topology_list(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0),
            topologies=["mux/strong_mutex_passgate", "mux/tristate"],
        )
        assert {c.topology for c in report.candidates} == {
            "mux/strong_mutex_passgate",
            "mux/tristate",
        }

    def test_render_mentions_all_candidates(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0),
        )
        text = report.render()
        for cand in report.candidates:
            assert cand.topology in text
        assert "best:" in text

    def test_clock_metric_prefers_static_mux(self, advisor):
        """At a relaxed delay, clock-load cost must never pick a domino mux
        over a clock-free pass-gate mux."""
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=500.0, cost="clock"),
        )
        assert report.best is not None
        assert "domino" not in report.best.topology


class TestPruning:
    def test_quick_estimate_positive(self, advisor, small_mux):
        estimate = advisor.quick_delay_estimate(
            small_mux, DesignConstraints(delay=100.0)
        )
        assert estimate > 0

    def test_hopeless_topology_pruned_without_sizing(self, advisor, library):
        """A budget far below nominal/PRUNE_FACTOR skips the sizer."""
        spec = MacroSpec("mux", 8, output_load=30.0)
        circuit = advisor.database.generate("mux/weak_mutex_passgate", spec, advisor.tech)
        nominal = nominal_delay(circuit, library)
        budget = nominal / PRUNE_FACTOR / 2.0
        report = advisor.advise(
            spec,
            DesignConstraints(delay=budget),
            topologies=["mux/weak_mutex_passgate"],
        )
        (cand,) = report.candidates
        assert not cand.feasible
        assert "pruned" in cand.reason or "infeasible" in cand.reason


class TestDesignerControls:
    def test_pinned_sizes_respected(self, advisor):
        constraints = DesignConstraints(
            delay=400.0, pinned_sizes={"P3": 15.0}
        )
        circuit, result = advisor.size_topology(
            "mux/strong_mutex_passgate",
            MacroSpec("mux", 4, output_load=30.0),
            constraints,
        )
        assert result.resolved["P3"] == pytest.approx(15.0)

    def test_size_topology_returns_circuit_and_result(self, advisor):
        circuit, result = advisor.size_topology(
            "mux/tristate",
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0),
        )
        assert circuit.name.startswith("mux4")
        assert result.converged


class TestConstraintsValidation:
    def test_bad_cost_rejected(self):
        with pytest.raises(ValueError):
            DesignConstraints(delay=100.0, cost="speed")

    def test_bad_delay_rejected(self):
        with pytest.raises(ValueError):
            DesignConstraints(delay=0.0)

    def test_scaled(self):
        c = DesignConstraints(delay=100.0, control_delay=120.0).scaled(1.5)
        assert c.delay == 150.0
        assert c.control_delay == 180.0

    def test_to_delay_spec_roundtrip(self):
        c = DesignConstraints(
            delay=100.0, evaluate_delay=90.0, otb_borrow=25.0, input_slope=20.0
        )
        spec = c.to_delay_spec()
        assert spec.data == 100.0
        assert spec.evaluate == 90.0
        assert spec.input_slope == 20.0


class TestIntervalScreenGate:
    """The interval-STA screen runs before the nominal-delay prune and the
    sizer; provably-infeasible topologies are skipped and counted."""

    def test_impossible_budget_screened_before_any_solve(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=1.0, cost="area"),
            topologies=["mux/strong_mutex_passgate", "mux/tristate"],
        )
        assert report.best is None
        for cand in report.candidates:
            assert cand.screened
            assert not cand.feasible
            assert "provably-infeasible" in cand.reason

    def test_screen_count_rendered_in_report(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=1.0, cost="area"),
            topologies=["mux/strong_mutex_passgate", "mux/tristate"],
        )
        text = report.render()
        assert "interval-STA screen" in text
        assert "2 topologies proven infeasible" in text

    def test_generous_budget_not_screened(self, advisor):
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0, cost="area"),
            topologies=["mux/strong_mutex_passgate"],
        )
        (cand,) = report.candidates
        assert not cand.screened
        assert cand.feasible
