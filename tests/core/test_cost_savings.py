"""Cost metric and Section-6.1 savings-protocol tests."""

import pytest

from repro.core.cost import CostBreakdown, evaluate_cost
from repro.core.savings import macro_savings, measure_and_resize
from repro.macros import MacroSpec


class TestCostBreakdown:
    def test_evaluate_cost_metrics(self, small_mux, library):
        env = small_mux.size_table.default_env()
        area = evaluate_cost(small_mux, library, env, "area")
        power = evaluate_cost(small_mux, library, env, "power")
        clock = evaluate_cost(small_mux, library, env, "clock")
        assert area.scalar == area.area
        assert power.scalar == power.power
        assert clock.scalar == clock.clock_load == 0.0  # static mux

    def test_area_plus_clock(self, domino_mux, library):
        env = domino_mux.size_table.default_env()
        combo = evaluate_cost(domino_mux, library, env, "area+clock")
        assert combo.scalar == pytest.approx(combo.area + combo.clock_load)

    def test_unknown_metric(self, small_mux, library):
        with pytest.raises(ValueError):
            evaluate_cost(small_mux, library,
                          small_mux.size_table.default_env(), "speed")

    def test_normalized_to(self):
        a = CostBreakdown(area=50.0, clock_load=10.0, power=200.0, scalar=50.0)
        b = CostBreakdown(area=100.0, clock_load=20.0, power=400.0, scalar=100.0)
        n = a.normalized_to(b)
        assert n.area == pytest.approx(0.5)
        assert n.power == pytest.approx(0.5)

    def test_normalized_zero_handling(self):
        a = CostBreakdown(area=1.0, clock_load=0.0, power=1.0, scalar=1.0)
        b = CostBreakdown(area=1.0, clock_load=0.0, power=1.0, scalar=1.0)
        assert a.normalized_to(b).clock_load == pytest.approx(1.0)


class TestSavingsProtocol:
    @pytest.fixture(scope="class")
    def mux_result(self, database, library):
        return macro_savings(
            database,
            "mux/strong_mutex_passgate",
            MacroSpec("mux", 6, output_load=40.0),
            library,
        )

    def test_smart_meets_baseline_timing(self, mux_result):
        assert mux_result.timing_met

    def test_positive_width_saving(self, mux_result):
        assert 0.0 < mux_result.width_saving < 0.9

    def test_normalized_width_complementary(self, mux_result):
        assert mux_result.normalized_width == pytest.approx(
            1.0 - mux_result.width_saving
        )

    def test_static_macro_no_clock_saving(self, mux_result):
        assert mux_result.clock_saving == 0.0

    def test_domino_clock_saving_positive(self, database, library):
        result = macro_savings(
            database,
            "mux/partitioned_domino",
            MacroSpec("mux", 8, output_load=30.0),
            library,
            objective="area+clock",
        )
        assert result.timing_met
        assert result.clock_saving > 0.0
        assert result.width_saving > 0.15

    def test_margin_increases_savings(self, database, library):
        spec = MacroSpec("zero_detect", 16, output_load=20.0)
        lean = macro_savings(
            database, "zero_detect/static_tree", spec, library, margin=1.1
        )
        fat = macro_savings(
            database, "zero_detect/static_tree", spec, library, margin=1.8
        )
        assert fat.width_saving > lean.width_saving

    def test_measure_and_resize_on_prebuilt_circuit(self, small_mux, library):
        result = measure_and_resize(small_mux, library, topology="custom")
        assert result.topology == "custom"
        assert result.smart.converged
