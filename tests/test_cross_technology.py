"""Cross-technology portability: the entire flow at a second process node.

The paper's methodology is process-portable by construction (the models are
parameterized, the database is structural).  These tests run the full stack
at the faster GENERIC_130 node and check scaling directions.
"""

import pytest

from repro import DesignConstraints, MacroSpec, SmartAdvisor
from repro.core.savings import macro_savings
from repro.models import GENERIC_130, GENERIC_180, ModelLibrary
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


@pytest.fixture(scope="module")
def lib130():
    return ModelLibrary(GENERIC_130)


@pytest.fixture(scope="module")
def lib180():
    return ModelLibrary(GENERIC_180)


class TestScaling:
    def test_faster_node_faster_nominal(self, database, lib130, lib180):
        spec = MacroSpec("mux", 8, output_load=30.0)
        c180 = database.generate("mux/unsplit_domino", spec, GENERIC_180)
        c130 = database.generate("mux/unsplit_domino", spec, GENERIC_130)
        assert nominal_delay(c130, lib130) < nominal_delay(c180, lib180)

    def test_sizer_converges_at_130(self, database, lib130):
        spec = MacroSpec("mux", 8, output_load=30.0)
        circuit = database.generate("mux/unsplit_domino", spec, GENERIC_130)
        result = SmartSizer(circuit, lib130).size(
            DelaySpec(data=0.9 * nominal_delay(circuit, lib130))
        )
        assert result.converged

    def test_bounds_track_technology(self, database, lib130):
        spec = MacroSpec("mux", 4, output_load=20.0)
        circuit = database.generate("mux/strong_mutex_passgate", spec, GENERIC_130)
        for var in circuit.size_table:
            assert var.lower == pytest.approx(GENERIC_130.min_width)

    def test_advisor_at_130(self, database, lib130):
        advisor = SmartAdvisor(database=database, library=lib130)
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=300.0),
        )
        assert report.best is not None

    def test_savings_protocol_portable(self, database, lib130):
        result = macro_savings(
            database,
            "zero_detect/static_tree",
            MacroSpec("zero_detect", 16, output_load=20.0),
            lib130,
        )
        assert result.timing_met
        assert result.width_saving > 0.05
