"""End-to-end instrumentation: the Figure-4 loop under trace/metrics.

The tentpole contract: a ``test_fig4_convergence``-style sizing run records
one ``iteration_record`` trace event per :class:`IterationRecord`, nested
spans for path extraction, each pruning pass, and every GP⇄STA refinement
iteration (with residual) — and the CLI's ``--trace`` file replays into a
readable report.
"""

import json

import pytest

from repro.macros import MacroSpec, default_database
from repro.models import ModelLibrary, Technology
from repro.obs import metrics, trace
from repro.obs.inspect import inspect_file
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


@pytest.fixture(scope="module")
def library():
    return ModelLibrary(Technology())


@pytest.fixture(scope="module")
def database():
    return default_database()


def _sized_run(database, library, tracer=None, registry=None):
    """One Figure-4 loop of the fig4-convergence shape, traced."""
    circuit = database.generate(
        "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0),
        library.tech,
    )
    budget = 0.9 * nominal_delay(circuit, library)
    with trace.tracing_scope(tracer) as t, metrics.metrics_scope(registry) as reg:
        result = SmartSizer(circuit, library).size(
            DelaySpec(data=budget), tolerance=2.0
        )
    return result, t, reg


class TestEngineTracing:
    @pytest.fixture(scope="class")
    def run(self, database, library):
        return _sized_run(database, library)

    def test_one_trace_event_per_iteration_record(self, run):
        result, tracer, _ = run
        events = [e for e in tracer.events if e.name == "iteration_record"]
        assert len(events) == len(result.history) == result.iterations
        for event, record in zip(events, result.history):
            assert event.attrs["iteration"] == record.iteration
            assert event.attrs["gp_status"] == record.gp_status
            assert event.attrs["residual"] == pytest.approx(
                record.worst_violation
            )

    def test_nested_spans_for_every_phase(self, run):
        _, tracer, _ = run
        names = [s.name for s in tracer.spans]
        assert "size" in names
        assert "path_extraction" in names
        assert "prune_pin_precedence" in names
        assert "prune_fanout_dominance" in names
        assert "prune_regularity" in names
        assert "constraint_generation" in names
        assert names.count("iteration") >= 1
        assert names.count("gp_solve") >= 1
        assert names.count("sta") >= 1

    def test_iteration_spans_carry_residual(self, run):
        result, tracer, _ = run
        iteration_spans = [s for s in tracer.spans if s.name == "iteration"]
        completed = [s for s in iteration_spans if "residual" in s.attrs]
        assert completed, "no iteration span recorded a residual"
        final = max(completed, key=lambda s: s.attrs["iteration"])
        assert final.attrs["residual"] == pytest.approx(
            result.history[-1].worst_violation, abs=1e-3
        )

    def test_spans_nest_under_size(self, run):
        _, tracer, _ = run
        by_id = {s.span_id: s for s in tracer.spans}
        size_span = next(s for s in tracer.spans if s.name == "size")
        for span in tracer.spans:
            if span.name in ("iteration", "path_extraction"):
                assert span.parent_id == size_span.span_id

    def test_metrics_recorded(self, run):
        result, _, reg = run
        assert reg.counter("engine.iterations").value == result.iterations
        assert reg.counter("gp.solves").value >= result.iterations
        assert reg.counter("sta.analyses").value >= 1
        assert reg.counter("sta.node_visits").value > 0
        assert reg.gauge("prune.initial").value >= reg.gauge(
            "prune.after_regularity"
        ).value
        residuals = reg.histogram("engine.residual_ps")
        assert residuals.count == len(
            [r for r in result.history if r.worst_violation == r.worst_violation]
        )

    def test_runtime_and_fallbacks_on_result(self, run):
        result, _, _ = run
        assert result.runtime_s > 0.0
        assert result.gp_fallback_count >= 0
        assert result.converged


class TestDisabledOverhead:
    def test_untraced_run_records_nothing(self, database, library):
        circuit = database.generate(
            "mux/tristate", MacroSpec("mux", 4, output_load=30.0),
            library.tech,
        )
        budget = 0.95 * nominal_delay(circuit, library)
        with metrics.metrics_scope():
            result = SmartSizer(circuit, library).size(DelaySpec(data=budget))
        assert result.converged
        assert not trace.enabled()
        assert trace.get_tracer().span("x") is trace.get_tracer().span("y")


class TestCliTraceFlow:
    def test_size_trace_profile_and_inspect(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "run.jsonl")
        code = main([
            "size", "mux", "8", "--delay", "360", "--load", "30",
            "--topology", "mux/partitioned_domino",
            "--trace", trace_path, "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile summary:" in out
        assert "gp_solve" in out
        assert "metrics:" in out

        # trace file is valid JSONL with the required nested spans
        names = set()
        with open(trace_path) as fh:
            for line in fh:
                obj = json.loads(line)
                if obj.get("type") == "span":
                    names.add(obj["name"])
        assert {
            "path_extraction", "prune_pin_precedence",
            "prune_fanout_dominance", "prune_regularity",
            "iteration", "gp_solve", "sta",
        } <= names

        # global tracer was uninstalled after the command
        assert not trace.enabled()

        report = inspect_file(trace_path)
        assert "span tree:" in report
        assert "convergence:" in report
        assert "profile summary:" in report

        code = main(["inspect", trace_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace report" in out

    def test_inspect_missing_file_fails_cleanly(self, capsys):
        from repro.cli import main

        code = main(["inspect", "/nonexistent/trace.jsonl"])
        out = capsys.readouterr().out
        assert code == 1
        assert "cannot read trace" in out

    def test_global_flag_position_also_accepted(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = str(tmp_path / "pre.jsonl")
        code = main([
            "--trace", trace_path,
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate",
        ])
        capsys.readouterr()
        assert code == 0
        with open(trace_path) as fh:
            assert json.loads(fh.readline())["type"] == "trace"

    def test_verbose_diagnostics_go_to_stderr(self, capsys):
        from repro.cli import main

        code = main([
            "size", "mux", "4", "--delay", "400", "--load", "30",
            "--topology", "mux/strong_mutex_passgate", "-v",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "sized" in captured.err       # engine INFO diagnostics
        assert "sized" not in captured.out   # stdout stays CLI-facing


class TestAdvisorReportColumns:
    def test_render_includes_runtime_and_fallbacks(self, database, library):
        from repro.core.advisor import SmartAdvisor
        from repro.core.constraints import DesignConstraints

        advisor = SmartAdvisor(database=database, library=library)
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=30.0),
            DesignConstraints(delay=400.0, cost="area"),
        )
        text = report.render()
        assert "time s" in text
        assert "gp-fb" in text
        best = report.best
        assert best is not None
        assert best.sizing.runtime_s > 0.0
