"""Live streaming: subscribers, incremental JSONL, tail view."""

import io
import json

from repro.obs import trace
from repro.obs.stream import (
    CollectingSubscriber,
    JsonlStreamWriter,
    TraceSubscriber,
    render_tail_line,
    tail_records,
    watch,
)
from repro.obs.trace import Tracer, load_jsonl, tracing_scope


class TestSubscriberCallbacks:
    def test_open_close_event_sequence(self):
        tracer = Tracer()
        sub = tracer.subscribe(CollectingSubscriber())
        with tracer.span("outer"):
            tracer.event("tick")
            with tracer.span("inner"):
                pass
        kinds = [(kind, r.name) for kind, r in sub.calls]
        assert kinds == [
            ("open", "outer"),
            ("event", "tick"),
            ("open", "inner"),
            ("close", "inner"),
            ("close", "outer"),
        ]

    def test_open_spans_have_no_end_yet(self):
        tracer = Tracer()
        sub = tracer.subscribe(CollectingSubscriber())
        ends_at_open = []

        class Probe(TraceSubscriber):
            def on_span_open(self, span):
                ends_at_open.append(span.t_end)

        tracer.subscribe(Probe())
        with tracer.span("s"):
            pass
        assert ends_at_open == [None]
        assert sub.closed()[0].t_end is not None

    def test_completeness_every_span_closes(self):
        tracer = Tracer()
        sub = tracer.subscribe(CollectingSubscriber())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert {s.span_id for s in sub.opened()} == {
            s.span_id for s in sub.closed()
        }
        assert sub.closed() == tracer.spans

    def test_unsubscribe_stops_delivery(self):
        tracer = Tracer()
        sub = tracer.subscribe(CollectingSubscriber())
        with tracer.span("first"):
            pass
        tracer.unsubscribe(sub)
        with tracer.span("second"):
            pass
        assert [r.name for _, r in sub.calls] == ["first", "first"]

    def test_unsubscribe_unknown_is_noop(self):
        Tracer().unsubscribe(object())

    def test_subscriber_exception_does_not_sink_the_run(self):
        class Broken(TraceSubscriber):
            def on_span_close(self, span):
                raise RuntimeError("observer bug")

        tracer = Tracer()
        tracer.subscribe(Broken())
        collector = tracer.subscribe(CollectingSubscriber())
        with tracer.span("survives"):
            pass
        assert [s.name for s in collector.closed()] == ["survives"]

    def test_partial_subscriber_missing_callbacks_ok(self):
        class OnlyEvents:
            def __init__(self):
                self.seen = []

            def on_event(self, event):
                self.seen.append(event.name)

        tracer = Tracer()
        sub = tracer.subscribe(OnlyEvents())
        with tracer.span("s"):
            tracer.event("e")
        assert sub.seen == ["e"]

    def test_grafted_records_are_delivered(self):
        worker = Tracer()
        with worker.span("topology"):
            worker.event("iteration_record", iteration=0)
        parent = Tracer()
        sub = parent.subscribe(CollectingSubscriber())
        with parent.span("advise"):
            parent.graft(
                worker.spans, worker.events, epoch_unix=worker.epoch_unix
            )
        names = [(kind, r.name) for kind, r in sub.calls]
        assert ("close", "topology") in names
        assert ("event", "iteration_record") in names

    def test_null_tracer_subscribe_is_noop(self):
        sub = CollectingSubscriber()
        assert trace.NULL_TRACER.subscribe(sub) is sub
        trace.NULL_TRACER.unsubscribe(sub)


class TestJsonlStreamWriter:
    def _run(self, tracer):
        with tracer.span("size", circuit="mux8"):
            with tracer.span("gp_solve"):
                pass
            tracer.event("iteration_record", residual=float("inf"))

    def test_streamed_equals_posthoc_export(self, tmp_path):
        tracer = Tracer()
        streamed = str(tmp_path / "streamed.jsonl")
        writer = JsonlStreamWriter(streamed).attach(tracer)
        self._run(tracer)
        writer.close()

        posthoc = str(tmp_path / "posthoc.jsonl")
        tracer.write_jsonl(posthoc)
        with open(streamed, "rb") as f1, open(posthoc, "rb") as f2:
            assert f1.read() == f2.read()

    def test_streamed_file_replays_identically(self, tmp_path):
        tracer = Tracer()
        streamed = str(tmp_path / "streamed.jsonl")
        with JsonlStreamWriter(streamed).attach(tracer):
            self._run(tracer)
        reexport = str(tmp_path / "reexport.jsonl")
        load_jsonl(streamed).write_jsonl(reexport)
        with open(streamed, "rb") as f1, open(reexport, "rb") as f2:
            assert f1.read() == f2.read()

    def test_lines_flushed_incrementally(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "s.jsonl")
        writer = JsonlStreamWriter(path).attach(tracer)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            # inner has closed -> already on disk, while outer is open
            with open(path) as fh:
                lines = [json.loads(line) for line in fh if line.strip()]
            assert [obj["type"] for obj in lines] == ["trace", "span"]
            assert lines[1]["name"] == "inner"
        writer.close()

    def test_accepts_file_object(self):
        tracer = Tracer()
        buf = io.StringIO()
        writer = JsonlStreamWriter(buf).attach(tracer)
        with tracer.span("s"):
            pass
        writer.close()
        lines = [line for line in buf.getvalue().splitlines() if line]
        assert len(lines) == 2  # header + span
        assert not buf.closed  # caller-owned handle stays open

    def test_lines_written_counter(self, tmp_path):
        tracer = Tracer()
        writer = JsonlStreamWriter(str(tmp_path / "s.jsonl")).attach(tracer)
        self._run(tracer)
        writer.close()
        assert writer.lines_written == 4  # header + event + 2 spans


class TestTailView:
    def _write_stream(self, tmp_path):
        tracer = Tracer()
        path = str(tmp_path / "s.jsonl")
        with JsonlStreamWriter(path).attach(tracer):
            with tracer.span("size", circuit="mux8"):
                tracer.event("iteration_record", iteration=0)
        return path

    def test_tail_records_parses_all(self, tmp_path):
        path = self._write_stream(tmp_path)
        records = list(tail_records(path))
        assert [r["type"] for r in records] == ["trace", "event", "span"]

    def test_tail_skips_corrupt_lines(self, tmp_path):
        path = self._write_stream(tmp_path)
        with open(path, "a") as fh:
            fh.write("{torn wri\n")
        assert len(list(tail_records(path))) == 3

    def test_tail_holds_back_partial_line(self, tmp_path):
        path = self._write_stream(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"type": "event", "name": "partial"')  # no newline
        names = [r.get("name") for r in tail_records(path)]
        assert "partial" not in names

    def test_render_tail_lines(self, tmp_path):
        path = self._write_stream(tmp_path)
        lines = [render_tail_line(r) for r in tail_records(path)]
        assert lines[0].startswith("-- trace stream")
        assert "iteration_record" in lines[1]
        assert "size" in lines[2] and "circuit=mux8" in lines[2]

    def test_render_ignores_unknown_records(self):
        assert render_tail_line({"type": "mystery"}) is None

    def test_watch_emits_rendered_lines(self, tmp_path):
        path = self._write_stream(tmp_path)
        out = []
        shown = watch(path, out.append)
        assert shown == 3
        assert len(out) == 3

    def test_follow_stops_on_timeout(self, tmp_path):
        path = self._write_stream(tmp_path)
        records = list(
            tail_records(path, follow=True, poll_s=0.01, timeout_s=0.05)
        )
        assert len(records) == 3

    def test_follow_stops_on_callback(self, tmp_path):
        path = self._write_stream(tmp_path)
        records = list(
            tail_records(path, follow=True, poll_s=0.01, stop=lambda: True)
        )
        assert len(records) == 3


class TestLiveAdvisorStreaming:
    """The acceptance criterion: a subscriber attached to a live
    ``SmartAdvisor.advise`` run receives span open/close events
    incrementally, and the streamed JSONL replays identically to the
    post-hoc export."""

    def _advise(self, tracer):
        from repro.core.advisor import SmartAdvisor
        from repro.core.constraints import DesignConstraints
        from repro.macros.base import MacroSpec

        with tracing_scope(tracer):
            return SmartAdvisor().advise(
                MacroSpec("incrementor", 2),
                DesignConstraints(delay=900.0),
                topologies=["incrementor/ripple"],
            )

    def test_subscriber_sees_live_advise_run(self, tmp_path):
        tracer = Tracer()
        sub = tracer.subscribe(CollectingSubscriber())
        streamed = str(tmp_path / "live.jsonl")
        writer = JsonlStreamWriter(streamed).attach(tracer)
        report = self._advise(tracer)
        writer.close()
        assert report.best is not None

        # completeness: every span the tracer recorded was delivered, in
        # completion order, and every open got a matching close
        assert sub.closed() == tracer.spans
        assert {s.span_id for s in sub.opened()} == {
            s.span_id for s in sub.closed()
        }
        names = [s.name for s in sub.closed()]
        assert "advise" in names and "size" in names

        # incrementality: opens arrive before the run's own children close
        kinds = [(kind, r.name) for kind, r in sub.calls]
        assert kinds.index(("open", "advise")) < kinds.index(
            ("close", "size")
        )

        # streamed JSONL == post-hoc export, byte for byte
        posthoc = str(tmp_path / "posthoc.jsonl")
        tracer.write_jsonl(posthoc)
        with open(streamed, "rb") as f1, open(posthoc, "rb") as f2:
            assert f1.read() == f2.read()
