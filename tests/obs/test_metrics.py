"""Metrics registry: instruments, snapshots, scope isolation."""

import pytest

from repro.obs import metrics
from repro.obs.metrics import MetricsRegistry, metrics_scope


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert reg.counter("x").value == pytest.approx(3.5)
        assert reg.counter("x") is c  # get-or-create returns the same object

    def test_gauge(self):
        reg = MetricsRegistry()
        assert reg.gauge("g").value is None
        reg.gauge("g").set(42.0)
        reg.gauge("g").set(7.0)
        assert reg.gauge("g").value == 7.0

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == pytest.approx(2.0)
        assert h.values == [1.0, 3.0, 2.0]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(5.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["mean"] == 5.0

    def test_render_mentions_every_instrument(self):
        reg = MetricsRegistry()
        reg.counter("gp.solves").inc()
        reg.gauge("paths.final").set(120)
        reg.histogram("residual").observe(1.0)
        text = reg.render()
        assert "gp.solves" in text
        assert "paths.final" in text
        assert "residual" in text


class TestQuantiles:
    def test_nearest_rank(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 11):          # 1..10
            h.observe(float(v))
        assert h.p50 == 5.0
        assert h.p90 == 9.0
        assert h.p99 == 10.0
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 10.0

    def test_single_observation(self):
        h = MetricsRegistry().histogram("h")
        h.observe(7.0)
        assert h.p50 == h.p90 == h.p99 == 7.0

    def test_non_finite_excluded(self):
        h = MetricsRegistry().histogram("h")
        for v in (1.0, float("inf"), 2.0, float("nan"), 3.0):
            h.observe(v)
        assert h.p50 == 2.0
        assert h.p99 == 3.0

    def test_all_non_finite_returns_none(self):
        h = MetricsRegistry().histogram("h")
        h.observe(float("inf"))
        h.observe(float("nan"))
        assert h.p50 is None

    def test_empty_returns_none(self):
        assert MetricsRegistry().histogram("h").p50 is None

    def test_q_out_of_range_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestToDict:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(float("inf"))
        assert reg.counter("c").to_dict() == {
            "kind": "counter", "name": "c", "value": 2.0
        }
        assert reg.gauge("g").to_dict() == {
            "kind": "gauge", "name": "g", "value": "Infinity"
        }

    def test_histogram_sanitizes_non_finite(self):
        import json

        h = MetricsRegistry().histogram("h")
        for v in (1.0, float("inf"), float("nan")):
            h.observe(v)
        payload = h.to_dict()
        assert payload["kind"] == "histogram"
        assert payload["max"] == "Infinity"
        assert payload["p50"] == 1.0
        # strict JSON: would raise on raw inf/nan
        json.dumps(payload, allow_nan=False)

    def test_registry_to_dict_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        payload = reg.to_dict()
        assert list(payload["counters"]) == ["a", "b"]
        assert payload["histograms"]["h"]["p99"] == 1.0


class TestScopeIsolation:
    def test_scope_swaps_global_registry(self):
        outer_value = metrics.counter("isolation.test").value
        with metrics_scope() as reg:
            metrics.counter("isolation.test").inc(100)
            assert reg.counter("isolation.test").value == 100
        # the outer registry never saw the increment
        assert metrics.counter("isolation.test").value == outer_value

    def test_nested_scopes(self):
        with metrics_scope() as outer:
            metrics.counter("n").inc()
            with metrics_scope() as inner:
                metrics.counter("n").inc(5)
                assert inner.counter("n").value == 5
            assert metrics.registry() is outer
            assert outer.counter("n").value == 1

    def test_scope_restores_on_exception(self):
        before = metrics.registry()
        with pytest.raises(RuntimeError):
            with metrics_scope():
                raise RuntimeError
        assert metrics.registry() is before

    def test_two_scopes_do_not_share_state(self):
        with metrics_scope() as first:
            metrics.counter("c").inc()
        with metrics_scope() as second:
            assert metrics.counter("c").value == 0
        assert first is not second
