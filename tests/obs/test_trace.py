"""Tracer: span nesting, JSONL round-trip, null-tracer behavior."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_jsonl,
    tracing_scope,
)


class TestNesting:
    def test_spans_record_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.depth == 0
        assert inner.depth == 1
        # children close before parents
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.depth == b.depth == 1

    def test_durations_are_nonnegative_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration_s >= 0.0
        assert outer.duration_s >= inner.duration_s

    def test_attrs_from_kwargs_and_set_attrs(self):
        tracer = Tracer()
        with tracer.span("s", macro="mux") as sp:
            sp.set_attrs(converged=True)
        assert sp.attrs == {"macro": "mux", "converged": True}

    def test_add_attrs_targets_innermost(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.add_attrs(x=1)
        assert inner.attrs == {"x": 1}
        assert outer.attrs == {}

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.spans[0].t_end is not None
        assert "error" in tracer.spans[0].attrs
        # the stack is clean afterwards
        with tracer.span("after") as after:
            pass
        assert after.depth == 0

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            tracer.event("iteration_record", iteration=0, residual=1.5)
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event.span_id == run.span_id
        assert event.attrs["residual"] == 1.5


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("size", circuit="mux8"):
            with tracer.span("gp_solve", method="slsqp"):
                pass
            tracer.event("iteration_record", iteration=0, residual=0.25)
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)

        dump = load_jsonl(path)
        assert [s.name for s in dump.spans] == ["gp_solve", "size"]
        by_name = {s.name: s for s in dump.spans}
        assert by_name["gp_solve"].parent_id == by_name["size"].span_id
        assert by_name["size"].attrs == {"circuit": "mux8"}
        assert len(dump.events) == 1
        assert dump.events[0].attrs == {"iteration": 0, "residual": 0.25}
        assert dump.unix_time == pytest.approx(tracer.epoch_unix)

    def test_every_line_is_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.event("e", k="v")
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 3  # header + event + span
        for line in lines:
            json.loads(line)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_jsonl(str(path))

    def test_rendering_survives_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        tree = load_jsonl(path).render_tree()
        assert "outer" in tree
        assert "  inner" in tree
        summary = load_jsonl(path).profile_summary()
        assert "profile summary" in summary
        assert "inner" in summary


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert isinstance(trace.get_tracer(), NullTracer)
        assert not trace.enabled()

    def test_null_tracer_span_is_shared_noop(self):
        cm1 = NULL_TRACER.span("a", x=1)
        cm2 = NULL_TRACER.span("b")
        assert cm1 is cm2
        with cm1 as sp:
            sp.set_attrs(anything=1)  # silently ignored
        NULL_TRACER.event("e", k="v")
        NULL_TRACER.add_attrs(k="v")

    def test_tracing_scope_activates_and_restores(self):
        before = trace.get_tracer()
        with tracing_scope() as tracer:
            assert trace.get_tracer() is tracer
            assert trace.enabled()
            with trace.span("via-module"):
                trace.event("e")
        assert trace.get_tracer() is before
        assert [s.name for s in tracer.spans] == ["via-module"]
        assert len(tracer.events) == 1

    def test_scope_restores_on_exception(self):
        before = trace.get_tracer()
        with pytest.raises(RuntimeError):
            with tracing_scope():
                raise RuntimeError
        assert trace.get_tracer() is before
