"""Tracer: span nesting, JSONL round-trip, null-tracer behavior."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_jsonl,
    tracing_scope,
)


class TestNesting:
    def test_spans_record_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.depth == 0
        assert inner.depth == 1
        # children close before parents
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id
        assert a.depth == b.depth == 1

    def test_durations_are_nonnegative_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.duration_s >= 0.0
        assert outer.duration_s >= inner.duration_s

    def test_attrs_from_kwargs_and_set_attrs(self):
        tracer = Tracer()
        with tracer.span("s", macro="mux") as sp:
            sp.set_attrs(converged=True)
        assert sp.attrs == {"macro": "mux", "converged": True}

    def test_add_attrs_targets_innermost(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                tracer.add_attrs(x=1)
        assert inner.attrs == {"x": 1}
        assert outer.attrs == {}

    def test_exception_closes_span_and_marks_error(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        assert tracer.spans[0].t_end is not None
        assert "error" in tracer.spans[0].attrs
        # the stack is clean afterwards
        with tracer.span("after") as after:
            pass
        assert after.depth == 0

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            tracer.event("iteration_record", iteration=0, residual=1.5)
        assert len(tracer.events) == 1
        event = tracer.events[0]
        assert event.span_id == run.span_id
        assert event.attrs["residual"] == 1.5


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("size", circuit="mux8"):
            with tracer.span("gp_solve", method="slsqp"):
                pass
            tracer.event("iteration_record", iteration=0, residual=0.25)
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)

        dump = load_jsonl(path)
        assert [s.name for s in dump.spans] == ["gp_solve", "size"]
        by_name = {s.name: s for s in dump.spans}
        assert by_name["gp_solve"].parent_id == by_name["size"].span_id
        assert by_name["size"].attrs == {"circuit": "mux8"}
        assert len(dump.events) == 1
        assert dump.events[0].attrs == {"iteration": 0, "residual": 0.25}
        assert dump.unix_time == pytest.approx(tracer.epoch_unix)

    def test_every_line_is_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.event("e", k="v")
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        with open(path) as fh:
            lines = [line for line in fh if line.strip()]
        assert len(lines) == 3  # header + event + span
        for line in lines:
            json.loads(line)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError):
            load_jsonl(str(path))

    def test_rendering_survives_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        tree = load_jsonl(path).render_tree()
        assert "outer" in tree
        assert "  inner" in tree
        summary = load_jsonl(path).profile_summary()
        assert "profile summary" in summary
        assert "inner" in summary


class TestNonFiniteSanitization:
    """``json.dumps`` happily emits ``Infinity``/``NaN``, which strict JSON
    parsers reject — the engine's first iteration records
    ``worst_violation=inf`` and the infeasible-retarget branch records
    ``gp_objective=nan``, so the export boundary must sanitize them."""

    def _strict(self, text):
        def reject(token):
            raise ValueError(f"non-compliant JSON token: {token}")

        return json.loads(text, parse_constant=reject)

    def test_jsonl_lines_are_strict_json(self):
        tracer = Tracer()
        with tracer.span("iteration", residual=float("inf")):
            tracer.event(
                "iteration_record",
                gp_objective=float("nan"),
                residual=float("inf"),
                slack=float("-inf"),
            )
        for line in tracer.jsonl_lines():
            self._strict(line)

    def test_sentinels_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("size"):
            tracer.event(
                "iteration_record",
                gp_objective=float("nan"),
                residual=float("inf"),
            )
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        with open(path) as fh:
            for line in fh:
                self._strict(line)
        dump = load_jsonl(path)
        assert dump.events[0].attrs == {
            "gp_objective": "NaN", "residual": "Infinity"
        }

    def test_json_sanitize_recurses(self):
        from repro.obs import json_sanitize

        assert json_sanitize(
            {"a": float("inf"), "b": [float("nan"), {"c": float("-inf")}],
             "d": 1.5, "e": "text"}
        ) == {"a": "Infinity", "b": ["NaN", {"c": "-Infinity"}],
              "d": 1.5, "e": "text"}

    def test_infeasible_retarget_trace_is_strict_json(
        self, tmp_path, monkeypatch
    ):
        """End-to-end: a run that takes the infeasible-retarget branch (the
        nan/inf producer) must still emit a strictly parseable trace."""
        from repro.macros import MacroSpec, default_database
        from repro.models import ModelLibrary, Technology
        from repro.sizing import DelaySpec, SmartSizer
        from repro.sizing.gp import GeometricProgram, GPInfeasibleError

        tech = Technology()
        circuit = default_database().generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0),
            tech,
        )
        calls = {"n": 0}
        real_solve = GeometricProgram.solve

        def flaky_solve(self, *args, **kwargs):
            index = calls["n"]
            calls["n"] += 1
            if index == 1:
                raise GPInfeasibleError("injected")
            return real_solve(self, *args, **kwargs)

        monkeypatch.setattr(GeometricProgram, "solve", flaky_solve)
        with tracing_scope() as tracer:
            SmartSizer(
                circuit, ModelLibrary(tech), pre_screen=False
            ).size(
                DelaySpec(data=400.0), tolerance=-1e9, max_outer_iterations=3
            )
        statuses = [
            e.attrs.get("gp_status")
            for e in tracer.events
            if e.name == "iteration_record"
        ]
        assert "infeasible-retarget" in statuses
        for line in tracer.jsonl_lines():
            self._strict(line)


class TestGraft:
    def test_subtrace_nests_under_open_span(self):
        worker = Tracer()
        with worker.span("topology"):
            with worker.span("gp_solve"):
                pass
            worker.event("iteration_record", iteration=0)

        parent = Tracer()
        with parent.span("advise") as advise:
            parent.graft(worker.spans, worker.events)
        by_name = {s.name: s for s in parent.spans}
        assert by_name["topology"].parent_id == advise.span_id
        assert by_name["topology"].depth == 1
        assert by_name["gp_solve"].parent_id == by_name["topology"].span_id
        assert by_name["gp_solve"].depth == 2
        assert len(parent.events) == 1
        assert parent.events[0].span_id == by_name["topology"].span_id

    def test_ids_do_not_collide(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        with parent.span("p"):
            parent.graft(worker.spans)
            with parent.span("after"):
                pass
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_times_rebased_within_parent(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        with parent.span("p") as p:
            parent.graft(worker.spans)
        grafted = next(s for s in parent.spans if s.name == "w")
        assert grafted.t_start >= 0.0
        assert grafted.t_end <= p.t_end

    def test_graft_at_root_allowed(self):
        worker = Tracer()
        with worker.span("w"):
            pass
        parent = Tracer()
        parent.graft(worker.spans)
        grafted = parent.spans[0]
        assert grafted.parent_id is None
        assert grafted.depth == 0

    def test_empty_graft_is_noop(self):
        parent = Tracer()
        parent.graft([], [])
        assert parent.spans == []

    def test_null_tracer_graft_is_noop(self):
        NULL_TRACER.graft([], [])


class TestGraftEpochRebasing:
    """Worker spans carry times relative to *their own* perf-counter epoch.
    Passing the worker's ``epoch_unix`` re-bases them exactly: the shift is
    the wall-clock skew between the two epochs, so two workers forked at
    different moments land at their true positions on the parent's axis."""

    @staticmethod
    def _worker_spans(t0, t1, name="w"):
        return [
            trace.SpanRecord(
                span_id=1, parent_id=None, name=name, depth=0,
                t_start=t0, t_end=t1,
            )
        ]

    def test_two_fake_worker_epochs_align_on_parent_axis(self):
        parent = Tracer()
        # Worker A forked 2 s after the parent's epoch, worker B 5 s after.
        # Both record an identical local interval [0.1, 0.4].
        epoch_a = parent.epoch_unix + 2.0
        epoch_b = parent.epoch_unix + 5.0
        with parent.span("advise"):
            parent.graft(
                self._worker_spans(0.1, 0.4, "a"), epoch_unix=epoch_a
            )
            parent.graft(
                self._worker_spans(0.1, 0.4, "b"), epoch_unix=epoch_b
            )
        a = next(s for s in parent.spans if s.name == "a")
        b = next(s for s in parent.spans if s.name == "b")
        assert a.t_start == pytest.approx(2.1)
        assert a.t_end == pytest.approx(2.4)
        assert b.t_start == pytest.approx(5.1)
        assert b.t_end == pytest.approx(5.4)
        # the 3 s fork skew between the workers is recovered exactly
        assert b.t_start - a.t_start == pytest.approx(3.0)
        # durations are untouched by re-basing
        assert a.duration_s == pytest.approx(0.3)
        assert b.duration_s == pytest.approx(0.3)

    def test_events_shift_with_their_epoch(self):
        parent = Tracer()
        epoch = parent.epoch_unix + 1.0
        events = [trace.EventRecord(name="e", t=0.25, span_id=1)]
        with parent.span("p"):
            parent.graft(
                self._worker_spans(0.1, 0.4), events, epoch_unix=epoch
            )
        assert parent.events[0].t == pytest.approx(1.25)

    def test_legacy_fallback_ends_at_parent_now(self):
        """Without an epoch the subtree is placed so it ends at the parent's
        current clock — wall-times stay truthful, placement approximate."""
        parent = Tracer()
        with parent.span("p") as p:
            parent.graft(self._worker_spans(10.0, 10.3))
        grafted = next(s for s in parent.spans if s.name == "w")
        assert grafted.duration_s == pytest.approx(0.3)
        assert grafted.t_end <= p.t_end
        assert grafted.t_end >= 0.0


class TestByteIdenticalReExport:
    """export -> load -> re-export must be byte-identical: the regression
    gate and the streamed-vs-posthoc contract both depend on replay fidelity.
    """

    def _make_trace(self):
        tracer = Tracer()
        with tracer.span("size", circuit="mux8", nested={"a": [1, 2.5]}):
            with tracer.span("gp_solve", status="optimal"):
                pass
            tracer.event(
                "iteration_record",
                residual=float("inf"),
                gp_objective=float("nan"),
                slack=float("-inf"),
            )
        return tracer

    def test_reexport_is_byte_identical(self, tmp_path):
        tracer = self._make_trace()
        first = str(tmp_path / "first.jsonl")
        second = str(tmp_path / "second.jsonl")
        tracer.write_jsonl(first)
        load_jsonl(first).write_jsonl(second)
        with open(first, "rb") as f1, open(second, "rb") as f2:
            assert f1.read() == f2.read()

    def test_double_round_trip_stable(self, tmp_path):
        tracer = self._make_trace()
        p1, p2, p3 = (str(tmp_path / f"{i}.jsonl") for i in (1, 2, 3))
        tracer.write_jsonl(p1)
        load_jsonl(p1).write_jsonl(p2)
        load_jsonl(p2).write_jsonl(p3)
        with open(p2, "rb") as f2, open(p3, "rb") as f3:
            assert f2.read() == f3.read()

    def test_interleaving_order_preserved(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.event("before")
            with tracer.span("inner"):
                pass
            tracer.event("after")
        path = str(tmp_path / "t.jsonl")
        tracer.write_jsonl(path)
        kinds = []
        with open(path) as fh:
            for line in fh:
                obj = json.loads(line)
                kinds.append((obj["type"], obj.get("name")))
        assert kinds == [
            ("trace", None),
            ("event", "before"),
            ("span", "inner"),
            ("event", "after"),
            ("span", "outer"),
        ]


class TestGlobalTracer:
    def test_disabled_by_default(self):
        assert isinstance(trace.get_tracer(), NullTracer)
        assert not trace.enabled()

    def test_null_tracer_span_is_shared_noop(self):
        cm1 = NULL_TRACER.span("a", x=1)
        cm2 = NULL_TRACER.span("b")
        assert cm1 is cm2
        with cm1 as sp:
            sp.set_attrs(anything=1)  # silently ignored
        NULL_TRACER.event("e", k="v")
        NULL_TRACER.add_attrs(k="v")

    def test_tracing_scope_activates_and_restores(self):
        before = trace.get_tracer()
        with tracing_scope() as tracer:
            assert trace.get_tracer() is tracer
            assert trace.enabled()
            with trace.span("via-module"):
                trace.event("e")
        assert trace.get_tracer() is before
        assert [s.name for s in tracer.spans] == ["via-module"]
        assert len(tracer.events) == 1

    def test_scope_restores_on_exception(self):
        before = trace.get_tracer()
        with pytest.raises(RuntimeError):
            with tracing_scope():
                raise RuntimeError
        assert trace.get_tracer() is before
