"""Performance observatory: attribution, ledger, exports, regression diff."""

import json
import math

import pytest

from repro.obs import perf
from repro.obs.perf import (
    RunLedger,
    attribution,
    build_run_record,
    critical_path,
    diff_samples,
    kernel_hotspots,
    ledger_scope,
    load_perf_source,
    make_trajectory,
    median,
    reconcile,
    record_run,
    self_times,
    to_chrome_trace,
    to_speedscope,
    try_load_perf_source,
)
from repro.obs.trace import EventRecord, SpanRecord, Tracer


def _span(sid, parent, name, t0, t1, depth=0, **attrs):
    return SpanRecord(
        span_id=sid, parent_id=parent, name=name, depth=depth,
        t_start=t0, t_end=t1, attrs=attrs,
    )


def _tree():
    """root[0,10] > a[1,4] (> leaf[2,3]) + b[5,9]."""
    return [
        _span(3, 2, "leaf", 2.0, 3.0, depth=2),
        _span(2, 1, "a", 1.0, 4.0, depth=1),
        _span(4, 1, "b", 5.0, 9.0, depth=1),
        _span(1, None, "root", 0.0, 10.0),
    ]


class TestSelfTimes:
    def test_partition_of_the_tree(self):
        selfs = self_times(_tree())
        assert selfs[1] == pytest.approx(3.0)   # 10 - (3 + 4)
        assert selfs[2] == pytest.approx(2.0)   # 3 - 1
        assert selfs[3] == pytest.approx(1.0)
        assert selfs[4] == pytest.approx(4.0)
        assert sum(selfs.values()) == pytest.approx(10.0)

    def test_overlapping_children_floor_at_zero(self):
        spans = [
            _span(2, 1, "w1", 0.0, 4.0, depth=1),
            _span(3, 1, "w2", 0.0, 4.0, depth=1),
            _span(1, None, "pool", 0.0, 5.0),
        ]
        assert self_times(spans)[1] == 0.0

    def test_open_spans_excluded(self):
        spans = [_span(1, None, "open", 0.0, None)]
        assert self_times(spans) == {}


class TestAttribution:
    def test_rows_sorted_by_self_time(self):
        rows = attribution(_tree())
        assert [r.name for r in rows] == ["b", "root", "a", "leaf"]
        assert rows[0].self_s == pytest.approx(4.0)
        assert rows[0].share == pytest.approx(0.4)

    def test_same_name_aggregates(self):
        spans = [
            _span(2, 1, "gp_solve", 1.0, 2.0, depth=1),
            _span(3, 1, "gp_solve", 3.0, 5.0, depth=1),
            _span(1, None, "size", 0.0, 6.0),
        ]
        row = next(r for r in attribution(spans) if r.name == "gp_solve")
        assert row.calls == 2
        assert row.total_s == pytest.approx(3.0)

    def test_reconcile_sequential_trace_is_exact(self):
        wall, self_sum = reconcile(_tree())
        assert wall == pytest.approx(10.0)
        assert self_sum == pytest.approx(wall)

    def test_reconcile_real_tracer_within_one_percent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                for _ in range(100):
                    pass
            with tracer.span("child"):
                pass
        wall, self_sum = reconcile(tracer.spans)
        assert self_sum == pytest.approx(wall, rel=0.01)

    def test_render_report(self):
        report = perf.render_attribution_report(_tree())
        assert "self-time attribution" in report
        assert "root" in report
        assert "100.0% reconciled" in report

    def test_render_empty(self):
        assert "no completed spans" in perf.render_attribution_report([])


class TestKernelsAndCriticalPath:
    def test_kernel_hotspots_keyed_by_circuit(self):
        spans = [
            _span(2, 1, "gp_solve", 0.5, 2.0, depth=1),
            _span(1, None, "size", 0.0, 3.0, circuit="mux8"),
            _span(4, 3, "sta", 0.2, 0.4, depth=1),
            _span(3, None, "size", 0.0, 1.0, circuit="adder16"),
        ]
        rows = kernel_hotspots(spans)
        assert [r.kernel for r in rows] == ["mux8", "adder16"]
        assert rows[0].wall_s == pytest.approx(3.0)
        assert rows[0].hotspots[0].name == "gp_solve"

    def test_kernel_repeat_sizings_aggregate(self):
        spans = [
            _span(1, None, "size", 0.0, 1.0, circuit="mux8"),
            _span(2, None, "size", 2.0, 4.0, circuit="mux8"),
        ]
        (row,) = kernel_hotspots(spans)
        assert row.calls == 2
        assert row.wall_s == pytest.approx(3.0)

    def test_critical_path_follows_heaviest_child(self):
        path = [s.name for s in critical_path(_tree())]
        assert path == ["root", "b"]

    def test_critical_path_empty(self):
        assert critical_path([]) == []


class TestExports:
    def test_chrome_trace_format(self):
        events = [EventRecord(name="tick", t=2.5, span_id=1, attrs={"i": 0})]
        payload = to_chrome_trace(_tree(), events, unix_time=123.0)
        assert payload["otherData"]["unix_time"] == 123.0
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        instant = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 4 and len(instant) == 1
        root = next(e for e in complete if e["name"] == "root")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(10.0 * 1e6)
        # strict JSON even with non-finite attrs
        json.loads(json.dumps(payload, allow_nan=False))

    def test_chrome_trace_sanitizes_attrs(self):
        spans = [_span(1, None, "s", 0.0, 1.0, residual=float("inf"))]
        payload = to_chrome_trace(spans)
        assert payload["traceEvents"][0]["args"] == {"residual": "Infinity"}

    def test_speedscope_events_nest(self):
        payload = to_speedscope(_tree(), name="test")
        assert payload["$schema"].endswith("file-format-schema.json")
        profile = payload["profiles"][0]
        assert profile["endValue"] == pytest.approx(10.0)
        # O/C events balance and never close a frame not currently open
        stack = []
        for ev in profile["events"]:
            if ev["type"] == "O":
                stack.append(ev["frame"])
            else:
                assert stack.pop() == ev["frame"]
        assert stack == []

    def test_speedscope_clamps_overhanging_children(self):
        spans = [
            _span(2, 1, "child", 0.5, 3.0, depth=1),  # overhangs parent
            _span(1, None, "parent", 0.0, 2.0),
        ]
        events = to_speedscope(spans)["profiles"][0]["events"]
        times = [ev["at"] for ev in events]
        assert times == sorted(times)
        assert max(times) <= 2.0


class TestRunLedger:
    def _record(self, name="mux8", wall=1.0, kind="size"):
        return build_run_record(kind, name, wall_s=wall)

    def test_append_and_reload(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = RunLedger(path)
        ledger.append(self._record())
        ledger.append(self._record(name="adder16", wall=2.0))
        reloaded = RunLedger.load(path)
        assert len(reloaded) == 2
        assert reloaded.records[1]["name"] == "adder16"

    def test_tolerant_loading_skips_corrupt_and_foreign(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        good = json.dumps(self._record())
        path.write_text(f"{good}\nnot json\n{{\"foreign\": 1}}\n{good}\n")
        ledger = RunLedger.load(str(path))
        assert len(ledger) == 2
        assert ledger.skipped_lines == 2

    def test_append_validates_required_fields(self):
        with pytest.raises(ValueError):
            RunLedger().append({"kind": "size"})

    def test_digest_tracks_content(self, tmp_path):
        a, b = RunLedger(), RunLedger()
        record = self._record()
        a.append(dict(record))
        b.append(dict(record))
        assert a.digest() == b.digest()
        b.append(self._record(name="other"))
        assert a.digest() != b.digest()

    def test_memory_ledger_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        RunLedger().append(self._record())
        assert list(tmp_path.iterdir()) == []

    def test_record_run_is_noop_without_ledger(self):
        assert perf.get_ledger() is None
        assert record_run("size", "mux8", wall_s=1.0) is None

    def test_ledger_scope_activates_and_restores(self):
        assert perf.get_ledger() is None
        with ledger_scope() as ledger:
            assert perf.get_ledger() is ledger
            record_run("size", "mux8", wall_s=1.0)
        assert perf.get_ledger() is None
        assert len(ledger) == 1

    def test_ledger_scope_accepts_path(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        with ledger_scope(path) as ledger:
            record_run("size", "mux8", wall_s=1.0)
        assert ledger.path == path
        assert len(RunLedger.load(path)) == 1


class TestBuildRunRecord:
    def test_phases_from_spans(self):
        record = build_run_record(
            "size", "mux8", wall_s=10.0, spans=_tree(),
            circuit_fp="c", context_fp="x", spec_fp="s",
        )
        assert record["format"] == perf.LEDGER_FORMAT
        assert record["circuit_fp"] == "c"
        assert record["phases"]["b"]["self_s"] == pytest.approx(4.0)
        assert record["phases"]["root"]["wall_s"] == pytest.approx(10.0)

    def test_untraced_leftover_bucket(self):
        spans = [_span(1, None, "a", 0.0, 2.0)]
        record = build_run_record("size", "m", wall_s=5.0, spans=spans)
        assert record["phases"]["(untraced)"]["self_s"] == pytest.approx(3.0)

    def test_gp_rollup_from_iteration_spans(self):
        spans = [
            _span(2, 1, "gp_solve", 0.0, 1.0, depth=2),
            _span(1, None, "iteration", 0.0, 2.0,
                  gp_status="optimal", residual=1.25),
        ]
        record = build_run_record("size", "m", wall_s=2.0, spans=spans)
        assert record["gp"]["solves"] == 1
        assert record["gp"]["iterations"] == 1
        assert record["gp"]["final_residual_ps"] == pytest.approx(1.25)

    def test_non_finite_payloads_sanitized(self):
        record = build_run_record(
            "size", "m", wall_s=1.0,
            cache={"saved": float("inf")},
            extra={"residual": float("nan")},
        )
        blob = json.dumps(record, allow_nan=False)
        assert "Infinity" in blob and "NaN" in blob

    def test_parallel_rollup_utilization(self):
        workers = [
            _span(1, None, "topology", 0.0, 3.0),
            _span(2, None, "topology", 0.0, 3.0),
        ]
        rollup = perf.parallel_rollup(workers, workers=2, wall_s=4.0)
        assert rollup["busy_s"] == pytest.approx(6.0)
        assert rollup["utilization"] == pytest.approx(0.75)


class TestRegressionDiff:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
        with pytest.raises(ValueError):
            median([])

    def test_same_samples_no_regression(self):
        base = {"size:mux8": [1.0, 1.01, 0.99]}
        diff = diff_samples(base, base)
        assert diff.ok
        assert diff.rows[0].verdict == "ok"

    def test_two_x_slowdown_flagged(self):
        diff = diff_samples(
            {"size:mux8": [1.0, 1.0, 1.0]},
            {"size:mux8": [2.0, 2.1, 1.9]},
        )
        assert not diff.ok
        (row,) = diff.regressions
        assert row.key == "size:mux8"
        assert row.ratio == pytest.approx(2.0)
        assert "REGRESSION" in diff.render()

    def test_min_effect_floor_absorbs_micro_noise(self):
        # 2x relative but only 20 ms absolute: under the 50 ms floor
        diff = diff_samples({"k": [0.01]}, {"k": [0.03]})
        assert diff.ok

    def test_relative_threshold_protects_slow_kernels(self):
        # 100 ms absolute but only 1% relative: not a regression
        diff = diff_samples({"k": [10.0]}, {"k": [10.1]})
        assert diff.ok

    def test_improvement_detected(self):
        diff = diff_samples({"k": [2.0]}, {"k": [1.0]})
        assert diff.ok
        assert diff.rows[0].verdict == "improvement"

    def test_added_and_removed_keys(self):
        diff = diff_samples({"gone": [1.0]}, {"new": [1.0]})
        verdicts = {r.key: r.verdict for r in diff.rows}
        assert verdicts == {"gone": "removed", "new": "added"}
        assert diff.ok

    def test_median_of_n_rejects_outlier(self):
        # one noisy sample does not flip the verdict
        diff = diff_samples(
            {"k": [1.0, 1.0, 1.0]},
            {"k": [1.0, 5.0, 1.0]},
        )
        assert diff.ok

    def test_to_json_is_strict(self):
        diff = diff_samples({"k": [1.0]}, {"k": [2.0]})
        payload = json.loads(json.dumps(diff.to_json(), allow_nan=False))
        assert payload["ok"] is False


class TestPerfSources:
    def test_load_ledger_source(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        ledger = RunLedger(path)
        ledger.append(build_run_record("size", "mux8", wall_s=1.0))
        ledger.append(build_run_record("size", "mux8", wall_s=1.2))
        samples = load_perf_source(path)
        assert samples == {"size:mux8": [1.0, 1.2]}

    def test_load_trajectory_source(self, tmp_path):
        path = tmp_path / "BENCH_PR6.json"
        stamp = make_trajectory(
            {"per_bit_sizing": [2.6, 2.65], "adder_sizing": 1.7},
            pr=6, ledger_digest="abc",
        )
        path.write_text(json.dumps(stamp))
        samples = load_perf_source(str(path))
        assert samples["per_bit_sizing"] == [2.6, 2.65]
        assert samples["adder_sizing"] == [1.7]

    def test_unknown_source_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            load_perf_source(str(path))

    def test_diff_paths_ledger_vs_self_ok(self, tmp_path):
        path = str(tmp_path / "l.jsonl")
        ledger = RunLedger(path)
        ledger.append(build_run_record("size", "mux8", wall_s=1.0))
        assert perf.diff_paths(path, path).ok

    def test_trajectory_format_fields(self):
        stamp = make_trajectory(
            {"k": 1.0}, pr=6, ledger_digest="d", tracked=["k"]
        )
        assert stamp["format"] == perf.TRAJECTORY_FORMAT
        assert stamp["pr"] == 6
        assert stamp["tracked"] == ["k"]
        assert stamp["kernels"]["k"] == {"wall_s": 1.0, "n": 1}


class TestTryLoadPerfSource:
    """None for honest no-baseline cases; loud for genuine corruption."""

    def test_missing_file_is_none(self, tmp_path):
        assert try_load_perf_source(str(tmp_path / "nope.json")) is None

    def test_empty_file_is_none(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        assert try_load_perf_source(str(path)) is None

    def test_bare_list_and_dict_are_none(self, tmp_path):
        for text in ("[]", "{}", "  []\n"):
            path = tmp_path / "stamp.json"
            path.write_text(text)
            assert try_load_perf_source(str(path)) is None

    def test_sampleless_trajectory_is_none(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(make_trajectory({}, pr=8)))
        assert try_load_perf_source(str(path)) is None

    def test_real_trajectory_loads(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(make_trajectory({"k": 1.0}, pr=8)))
        assert try_load_perf_source(str(path)) == {"k": [1.0]}

    def test_malformed_source_still_raises(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            try_load_perf_source(str(path))


class TestLedgerIntegration:
    """Acceptance criteria on a real advisor run: records for every layer,
    attribution reconciles with the span tree, and two ledgers of the same
    run diff clean while a synthetic 2x slowdown is flagged."""

    def _advise(self):
        from repro.core.advisor import SmartAdvisor
        from repro.core.constraints import DesignConstraints
        from repro.macros.base import MacroSpec
        from repro.obs.trace import tracing_scope

        with ledger_scope() as ledger, tracing_scope() as tracer:
            SmartAdvisor().advise(
                MacroSpec("incrementor", 2),
                DesignConstraints(delay=900.0),
                topologies=["incrementor/ripple"],
            )
        return ledger, tracer

    def test_advise_emits_layered_records(self):
        ledger, tracer = self._advise()
        kinds = [r["kind"] for r in ledger.records]
        assert "advise" in kinds and "size" in kinds and "lint" in kinds
        advise = next(r for r in ledger.records if r["kind"] == "advise")
        assert advise["spec_fp"] and advise["context_fp"]
        assert advise["phases"]
        size = next(r for r in ledger.records if r["kind"] == "size")
        assert size["circuit_fp"] and size["spec_fp"]
        assert size["gp"]["iterations"] >= 1
        assert size["cache"]["hit"] == "miss"
        # the span-derived per-phase wall reconciles with the recorded wall
        # (the span additionally covers cache settle + record building, so
        # allow a few ms of close-out overhead)
        size_span = next(s for s in tracer.spans if s.name == "size")
        assert size["wall_s"] == pytest.approx(
            size_span.duration_s, rel=0.05, abs=5e-3
        )

    def test_attribution_reconciles_with_span_tree(self):
        _, tracer = self._advise()
        wall, self_sum = reconcile(tracer.spans)
        assert self_sum == pytest.approx(wall, rel=0.01)
        rows = attribution(tracer.spans)
        assert sum(r.self_s for r in rows) == pytest.approx(wall, rel=0.01)

    def test_same_run_diffs_clean_and_slowdown_flagged(self):
        ledger, _ = self._advise()
        base = perf.ledger_samples(ledger.records)
        assert perf.diff_samples(base, base).ok

        slowed = {
            key: [2.0 * max(v, 0.1) for v in values]
            for key, values in base.items()
        }
        diff = perf.diff_samples(base, slowed)
        assert not diff.ok
        assert any(
            r.key.startswith("size:") or r.key.startswith("advise:")
            for r in diff.regressions
        )

    def test_ledger_records_are_strict_json(self):
        ledger, _ = self._advise()
        for record in ledger.records:
            json.dumps(record, allow_nan=False)

    def test_histogram_quantile_integration(self):
        from repro.obs import metrics

        with metrics.metrics_scope() as reg:
            h = reg.histogram("h")
            for value in [1.0, 2.0, 3.0, math.inf, math.nan]:
                h.observe(value)
            assert h.p50 == 2.0
            assert h.p99 == 3.0
            payload = h.to_dict()
            assert payload["max"] == "Infinity"
            json.dumps(payload, allow_nan=False)


class TestRuleRollup:
    """Per-rule wall-time attribution (the slowest-rules table)."""

    def _records(self):
        mk = lambda rule, wall, status: {
            "kind": "rule", "name": rule, "wall_s": wall,
            "extra": {"circuit": "c", "status": status},
        }
        return [
            mk("DFA301", 0.5, "executed"),
            mk("DFA301", 0.3, "executed"),
            mk("DFA301", 0.0, "replayed"),
            mk("ERC001", 0.1, "executed"),
            {"kind": "lint", "name": "c", "wall_s": 1.0},
        ]

    def test_rollup_totals_and_order(self):
        from repro.obs.perf import rule_rollup

        rows = rule_rollup(self._records())
        assert [r["rule"] for r in rows] == ["DFA301", "ERC001"]
        top = rows[0]
        assert top["wall_s"] == pytest.approx(0.8)
        assert top["max_s"] == pytest.approx(0.5)
        assert top["executed"] == 2
        assert top["replayed"] == 1

    def test_summary_renders_slowest_rules_section(self):
        from repro.obs.perf import render_ledger_summary

        text = render_ledger_summary(self._records())
        assert "slowest lint rules" in text
        assert "DFA301" in text
        # per-rule records do not flood the main listing
        assert text.count("\nrule") <= 1

    def test_summary_without_rule_records_unchanged(self):
        from repro.obs.perf import render_ledger_summary

        text = render_ledger_summary(
            [{"kind": "lint", "name": "c", "wall_s": 1.0}]
        )
        assert "slowest lint rules" not in text

    def test_summary_renders_electrical_margins_section(self):
        from repro.obs.perf import build_run_record, render_ledger_summary

        # build_run_record flattens extra kwargs onto the record, so the
        # renderer must read noise_margin at the top level.
        record = build_run_record(
            "electrical", "mux4_unsplit_domino", wall_s=0.004,
            extra={"noise_margin": -0.154},
        )
        text = render_ledger_summary([record])
        assert "electrical noise margins (NSA6xx, post-sizing)" in text
        assert "mux4_unsplit_domino" in text
        assert "-15.4%" in text
        # electrical records stay out of the main per-run table
        assert text.count("mux4_unsplit_domino") == 1

    def test_end_to_end_lint_ledger_has_rule_attribution(self, tmp_path):
        from repro.cli import main as cli_main
        from repro.obs.perf import RunLedger, render_ledger_summary

        ledger = str(tmp_path / "ledger.jsonl")
        assert cli_main([
            "--ledger", ledger,
            "lint", "mux", "4", "--topology", "mux/strong_mutex_passgate",
        ]) == 0
        text = render_ledger_summary(RunLedger.load(ledger).records)
        assert "slowest lint rules" in text
        assert "ERC" in text or "DFA" in text
