"""Macro database infrastructure tests."""

import pytest

from repro.macros import MacroDatabase, MacroGenerator, MacroSpec, default_database
from repro.macros.mux import StrongMutexPassgateMux


class TestMacroSpec:
    def test_invalid_width(self):
        with pytest.raises(ValueError):
            MacroSpec("mux", 0)

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            MacroSpec("mux", 4, output_load=-1.0)

    def test_params_access(self):
        spec = MacroSpec("mux", 8, params=(("partition", 3),))
        assert spec.param("partition") == 3
        assert spec.param("absent", 7) == 7

    def test_with_params(self):
        spec = MacroSpec("mux", 8).with_params(partition=5)
        assert spec.param("partition") == 5
        assert spec.width == 8

    def test_hashable(self):
        assert hash(MacroSpec("mux", 8)) == hash(MacroSpec("mux", 8))


class TestDatabase:
    def test_default_database_complete(self, database):
        names = {g.name for g in database.topologies()}
        assert len(names) == len(database.topologies())
        for family in (
            "mux", "incrementor", "decrementor", "zero_detect",
            "decoder", "encoder", "adder", "comparator", "shifter",
            "register_file",
        ):
            assert database.topologies(family), family

    def test_duplicate_registration_rejected(self):
        db = MacroDatabase()
        db.register(StrongMutexPassgateMux())
        with pytest.raises(ValueError):
            db.register(StrongMutexPassgateMux())

    def test_anonymous_generator_rejected(self):
        class Anon(MacroGenerator):
            pass

        with pytest.raises(ValueError):
            MacroDatabase().register(Anon())

    def test_unknown_topology_helpful_error(self, database):
        with pytest.raises(KeyError) as err:
            database.generator("mux/does_not_exist")
        assert "known" in str(err.value)

    def test_applicable_filters(self, database):
        two_wide = database.applicable(MacroSpec("mux", 2))
        names = {g.name for g in two_wide}
        assert "mux/encoded_select_2to1" in names
        assert "mux/partitioned_domino" not in names  # needs width >= 4

    def test_generate_validates(self, database, tech):
        circuit = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4), tech
        )
        assert circuit.stages

    def test_generate_wrong_spec_rejected(self, database, tech):
        with pytest.raises(ValueError):
            database.generate(
                "mux/encoded_select_2to1", MacroSpec("mux", 4), tech
            )

    def test_expandability(self, database, tech):
        """A designer can add a new topology (Section 4's key property)."""

        class MyMux(StrongMutexPassgateMux):
            name = "mux/custom_variant"
            description = "designer-contributed variant"

        before = len(database.topologies("mux"))
        db = default_database()
        db.register(MyMux())
        assert len(db.topologies("mux")) == before + 1
        circuit = db.generate("mux/custom_variant", MacroSpec("mux", 4), tech)
        assert circuit.stages
