"""Incrementor / zero-detect / decoder macro tests (the Figure-5 corpus)."""

import pytest

from repro.macros import MacroSpec
from repro.netlist import PinSpeed, StageKind, validate_circuit
from repro.sizing import longest_path_length


class TestIncrementors:
    @pytest.mark.parametrize("width", [3, 8, 13, 27])
    def test_ripple_structure(self, database, tech, width):
        inc = database.generate(
            "incrementor/ripple", MacroSpec("incrementor", width), tech
        )
        assert validate_circuit(inc).ok
        sums = [n for n in inc.primary_outputs if n.startswith("sum")]
        assert len(sums) == width
        assert "cout" in inc.primary_outputs

    def test_ripple_depth_linear(self, database, tech):
        d8 = longest_path_length(
            database.generate("incrementor/ripple", MacroSpec("incrementor", 8), tech)
        )
        d16 = longest_path_length(
            database.generate("incrementor/ripple", MacroSpec("incrementor", 16), tech)
        )
        assert d16 > d8 + 10

    def test_prefix_depth_logarithmic(self, database, tech):
        d8 = longest_path_length(
            database.generate("incrementor/prefix", MacroSpec("incrementor", 8), tech)
        )
        d32 = longest_path_length(
            database.generate("incrementor/prefix", MacroSpec("incrementor", 32), tech)
        )
        assert d32 <= d8 + 6  # ~2 extra AND2 levels

    def test_label_grouping(self, database, tech):
        grouped = database.generate(
            "incrementor/ripple",
            MacroSpec("incrementor", 16, params=(("label_group", 4),)),
            tech,
        )
        per_bit = database.generate(
            "incrementor/ripple",
            MacroSpec("incrementor", 16, params=(("label_group", 1),)),
            tech,
        )
        assert len(per_bit.size_table) > len(grouped.size_table)

    def test_decrementor_has_input_inverters(self, database, tech):
        dec = database.generate(
            "decrementor/ripple", MacroSpec("decrementor", 8), tech
        )
        inc = database.generate(
            "incrementor/ripple", MacroSpec("incrementor", 8), tech
        )
        assert dec.transistor_count() > inc.transistor_count()
        assert any(s.name.startswith("inpinv") for s in dec.stages)

    def test_prefix_decrementor_validates(self, database, tech):
        dec = database.generate(
            "decrementor/prefix", MacroSpec("decrementor", 13), tech
        )
        assert validate_circuit(dec).ok


class TestZeroDetects:
    @pytest.mark.parametrize("width", [6, 8, 16, 22, 32, 63])
    def test_static_tree_all_widths(self, database, tech, width):
        zdet = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", width), tech
        )
        assert validate_circuit(zdet).ok
        assert zdet.primary_outputs == ["zero"]

    def test_tree_gates_annotated_fast_slow(self, database, tech):
        zdet = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", 16), tech
        )
        tree_gates = [s for s in zdet.stages if s.kind in (StageKind.NOR, StageKind.NAND)]
        assert tree_gates
        for gate in tree_gates:
            speeds = [p.speed for p in gate.inputs]
            assert speeds[0] is PinSpeed.SLOW
            assert all(s is PinSpeed.FAST for s in speeds[1:])

    def test_tree_depth_logarithmic(self, database, tech):
        d8 = longest_path_length(
            database.generate("zero_detect/static_tree", MacroSpec("zero_detect", 8), tech)
        )
        d63 = longest_path_length(
            database.generate("zero_detect/static_tree", MacroSpec("zero_detect", 63), tech)
        )
        assert d63 <= d8 + 3

    def test_domino_single_wide_node(self, database, tech):
        zdet = database.generate(
            "zero_detect/domino", MacroSpec("zero_detect", 32), tech
        )
        (dom,) = [s for s in zdet.stages if s.kind is StageKind.DOMINO]
        assert len(dom.leg_sizes) == 32
        assert max(dom.leg_sizes) == 1

    def test_split_domino_two_nodes(self, database, tech):
        zdet = database.generate(
            "zero_detect/split_domino", MacroSpec("zero_detect", 22), tech
        )
        dominos = [s for s in zdet.stages if s.kind is StageKind.DOMINO]
        assert len(dominos) == 2
        assert sum(len(d.leg_sizes) for d in dominos) == 22
        # Halves share labels (identical nodes, same sizes).
        assert dominos[0].size_vars == dominos[1].size_vars


class TestDecoders:
    @pytest.mark.parametrize("n", [2, 3, 4, 6, 7])
    def test_flat_output_count(self, database, tech, n):
        dec = database.generate("decoder/flat_static", MacroSpec("decoder", n), tech)
        outs = [o for o in dec.primary_outputs if o.startswith("o")]
        assert len(outs) == 2 ** n
        assert validate_circuit(dec).ok

    def test_flat_minterm_wiring(self, database, tech):
        dec = database.generate("decoder/flat_static", MacroSpec("decoder", 2), tech)
        # Output o3 = a1 & a0: its NAND must see both true rails.
        nand = dec.stage("mnand3")
        nets = {p.net.name for p in nand.inputs}
        assert nets == {"a0", "a1"}
        # Output o0: both complement rails.
        nand0 = dec.stage("mnand0")
        assert {p.net.name for p in nand0.inputs} == {"ab0", "ab1"}

    def test_predecoded_two_levels(self, database, tech):
        dec = database.generate("decoder/predecoded", MacroSpec("decoder", 6), tech)
        assert validate_circuit(dec).ok
        # 6 bits -> two 3-bit groups -> 16 predecode lines.
        pre = [s for s in dec.stages if s.name.startswith("pnand")]
        assert len(pre) == 16
        # Output combine NANDs are 2-wide.
        out_nands = [s for s in dec.stages if s.name.startswith("mnand")]
        assert all(len(s.inputs) == 2 for s in out_nands)

    def test_predecoded_narrower_gates_than_flat(self, database, tech):
        flat = database.generate("decoder/flat_static", MacroSpec("decoder", 6), tech)
        pre = database.generate("decoder/predecoded", MacroSpec("decoder", 6), tech)
        flat_fanin = max(
            len(s.inputs) for s in flat.stages if s.kind is StageKind.NAND
        )
        pre_fanin = max(
            len(s.inputs) for s in pre.stages if s.kind is StageKind.NAND
        )
        assert flat_fanin == 6
        assert pre_fanin == 3

    def test_domino_decoder_clock_heavy(self, database, tech):
        dec = database.generate("decoder/domino", MacroSpec("decoder", 4), tech)
        dominos = [s for s in dec.stages if s.kind is StageKind.DOMINO]
        assert len(dominos) == 16
        env = dec.size_table.default_env()
        assert dec.clock_load_width(env) > 0
