"""Barrel shifter and register-file read-port macro tests."""

import pytest

from repro.macros import MacroSpec
from repro.netlist import StageKind, validate_circuit
from repro.sim import TransientSimulator, clock, constant
from repro.sizing import DelaySpec, SmartSizer, longest_path_length
from repro.sizing.engine import nominal_delay


def _rf_spec(bits=4, regs=8, load=20.0):
    return MacroSpec(
        "register_file", bits, output_load=load, params=(("registers", regs),)
    )


class TestBarrelRotator:
    def test_power_of_two_only(self, database):
        gen = database.generator("shifter/passgate_barrel")
        assert gen.applicable(MacroSpec("shifter", 8))
        assert not gen.applicable(MacroSpec("shifter", 6))

    def test_rank_count(self, database, tech):
        shifter = database.generate(
            "shifter/passgate_barrel", MacroSpec("shifter", 16), tech
        )
        selects = [n for n in shifter.primary_inputs if n.startswith("sh")]
        assert len(selects) == 4
        assert validate_circuit(shifter).ok

    def test_depth_logarithmic(self, database, tech):
        d8 = longest_path_length(
            database.generate("shifter/passgate_barrel", MacroSpec("shifter", 8), tech)
        )
        d32 = longest_path_length(
            database.generate("shifter/passgate_barrel", MacroSpec("shifter", 32), tech)
        )
        # Each extra rank costs a fixed number of stages (mux + buffer).
        assert d32 - d8 <= 2 * 3

    def test_labels_shared_per_rank(self, database, tech):
        shifter = database.generate(
            "shifter/passgate_barrel", MacroSpec("shifter", 8), tech
        )
        rank0 = [
            s for s in shifter.stages
            if s.kind is StageKind.PASSGATE and s.name.startswith("r0")
        ]
        assert len({s.label("pass") for s in rank0}) == 1

    def test_sizes(self, database, library, tech):
        shifter = database.generate(
            "shifter/passgate_barrel", MacroSpec("shifter", 8, output_load=20.0), tech
        )
        result = SmartSizer(shifter, library).size(
            DelaySpec(data=0.9 * nominal_delay(shifter, library))
        )
        assert result.converged

    def test_tristate_variant_validates(self, database, tech):
        shifter = database.generate(
            "shifter/tristate_barrel", MacroSpec("shifter", 8), tech
        )
        assert validate_circuit(shifter).ok

    @pytest.mark.parametrize("amount", [0, 1, 3])
    def test_rotation_function(self, database, tech, amount):
        """Drive a one-hot input and check it lands rotated by the select."""
        shifter = database.generate(
            "shifter/passgate_barrel", MacroSpec("shifter", 4, output_load=10.0), tech
        )
        env = {name: 2.0 for name in shifter.size_table.free_names()}
        devices = shifter.expand_transistors(env)
        extra = {
            n.name: n.fixed_cap for n in shifter.nets.values() if n.fixed_cap > 0
        }
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        hot = 2
        stim = {}
        for i in range(4):
            stim[f"in{i}"] = constant(tech.vdd if i == hot else 0.0)
        for s in range(2):
            stim[f"sh{s}"] = constant(tech.vdd if (amount >> s) & 1 else 0.0)
        result = sim.run(stim, duration=4000.0, dt=4.0)
        # Rotation: out[i] = in[(i + amount) % 4], so the hot input appears
        # at index (hot - amount) mod 4.
        expect = (hot - amount) % 4
        for i in range(4):
            v = result.final(f"out{i}")
            if i == expect:
                assert v > 0.8 * tech.vdd, (i, v)
            else:
                assert v < 0.2 * tech.vdd, (i, v)


class TestRegisterFileReadPort:
    def test_power_of_two_registers(self, database):
        gen = database.generator("register_file/domino_bitline")
        assert gen.applicable(_rf_spec(regs=8))
        assert not gen.applicable(
            MacroSpec("register_file", 4, params=(("registers", 6),))
        )

    def test_structure(self, database, tech):
        rf = database.generate("register_file/domino_bitline", _rf_spec(), tech)
        assert validate_circuit(rf).ok
        bitmuxes = [s for s in rf.stages if s.name.startswith("bitmux")]
        assert len(bitmuxes) == 4
        assert all(len(s.leg_sizes) == 8 for s in bitmuxes)
        # Decoder merged under its own namespace.
        assert any(s.name.startswith("dec/") for s in rf.stages)

    def test_data_inputs_per_reg_and_bit(self, database, tech):
        rf = database.generate("register_file/domino_bitline", _rf_spec(), tech)
        data_inputs = [n for n in rf.primary_inputs if n.startswith("d")]
        assert len(data_inputs) == 8 * 4

    def test_domino_port_sizes(self, database, library, tech):
        rf = database.generate("register_file/domino_bitline", _rf_spec(), tech)
        result = SmartSizer(rf, library).size(
            DelaySpec(data=0.9 * nominal_delay(rf, library))
        )
        assert result.converged
        assert result.clock_load > 0

    def test_tristate_port_sizes_with_relaxed_bitline_slope(
        self, database, library, tech
    ):
        rf = database.generate("register_file/tristate_bitline", _rf_spec(), tech)
        result = SmartSizer(rf, library).size(
            DelaySpec(
                data=0.9 * nominal_delay(rf, library), max_internal_slope=550.0
            )
        )
        assert result.converged

    def test_read_function(self, database, tech):
        """Evaluate reads the addressed register's bit pattern."""
        rf = database.generate(
            "register_file/domino_bitline",
            _rf_spec(bits=2, regs=4, load=10.0),
            tech,
        )
        env = {name: 3.0 for name in rf.size_table.free_names()}
        devices = rf.expand_transistors(env)
        extra = {n.name: n.fixed_cap for n in rf.nets.values() if n.fixed_cap > 0}
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        target = 2           # read register 2
        pattern = 0b01       # its contents
        stim = {"clk": clock(tech.vdd, period=4000.0, cycles=1, start_low=2000.0)}
        for a in range(2):
            stim[f"a{a}"] = constant(tech.vdd if (target >> a) & 1 else 0.0)
        for r in range(4):
            for b in range(2):
                value = (pattern >> b) & 1 if r == target else ((r + b) % 2)
                stim[f"d{r}_{b}"] = constant(tech.vdd if value else 0.0)
        result = sim.run(stim, duration=4000.0, dt=4.0)
        idx = int(3900 / 4)
        for b in range(2):
            want = (pattern >> b) & 1
            v = result.v(f"q{b}")[idx]
            if want:
                assert v > 0.8 * tech.vdd, (b, v)
            else:
                assert v < 0.2 * tech.vdd, (b, v)
