"""Whole-database invariants: every registered topology, at a representative
spec, must (a) validate structurally, (b) round-trip through SPICE, (c) yield
an all-posynomial constraint set, and (d) build a solvable GP.

These are the contracts the advisor flow relies on for *any* macro a designer
adds — run across the shipped database so a regression in any generator or
model template is caught at the source.
"""

import pytest

from repro.macros import MacroSpec
from repro.netlist import export_circuit, read_spice, validate_circuit
from repro.posy import is_posynomial_in
from repro.sizing import DelaySpec, PathExtractor, prune_paths
from repro.sizing.constraints import ConstraintGenerator
from repro.sizing.engine import nominal_delay

#: A representative, cheap spec per family.
REPRESENTATIVE = {
    "mux": MacroSpec("mux", 4, output_load=20.0),
    "incrementor": MacroSpec("incrementor", 6, output_load=20.0),
    "decrementor": MacroSpec("decrementor", 6, output_load=20.0),
    "zero_detect": MacroSpec("zero_detect", 8, output_load=20.0),
    "decoder": MacroSpec("decoder", 3, output_load=20.0),
    "encoder": MacroSpec("encoder", 3, output_load=20.0),
    "adder": MacroSpec("adder", 16, output_load=20.0),
    "comparator": MacroSpec("comparator", 32, output_load=20.0),
    "shifter": MacroSpec("shifter", 8, output_load=20.0),
    "register_file": MacroSpec(
        "register_file", 2, output_load=20.0, params=(("registers", 4),)
    ),
}


def _all_cases(database):
    cases = []
    for generator in database.topologies():
        spec = REPRESENTATIVE[generator.macro_type]
        if generator.applicable(spec):
            cases.append((generator.name, spec))
        else:
            # Width-restricted topologies (e.g. 2:1 encoded mux) get a
            # family-appropriate fallback.
            for width in (2, 4, 8, 16, 64):
                alt = MacroSpec(spec.macro_type, width, output_load=20.0,
                                params=spec.params)
                if generator.applicable(alt):
                    cases.append((generator.name, alt))
                    break
    return cases


def _case_ids(database):
    return [name for name, _ in _all_cases(database)]


@pytest.fixture(scope="module")
def circuits(database, tech):
    """Every topology generated once for the whole module."""
    return {
        name: database.generate(name, spec, tech)
        for name, spec in _all_cases(database)
    }


def test_every_topology_covered(database):
    covered = {name for name, _ in _all_cases(database)}
    registered = {g.name for g in database.topologies()}
    assert covered == registered


def test_all_validate(circuits):
    for name, circuit in circuits.items():
        report = validate_circuit(circuit)
        assert report.ok, (name, report.errors)


def test_all_spice_roundtrip(circuits):
    for name, circuit in circuits.items():
        env = circuit.size_table.default_env()
        parsed = read_spice(export_circuit(circuit, env))
        (subckt,) = parsed
        assert len(parsed[subckt]) == circuit.transistor_count(), name


def test_all_constraints_posynomial(circuits, library):
    for name, circuit in circuits.items():
        extractor = PathExtractor(circuit)
        if extractor.count() > 2000:
            paths = extractor.extract_representative()
        else:
            paths = prune_paths(circuit, extractor.extract()).paths
        generator = ConstraintGenerator(
            circuit, library, DelaySpec(data=500.0, charge_sharing_ratio=1.5)
        )
        constraint_set = generator.generate(paths, {})
        assert constraint_set.timing, name
        labels = circuit.size_table.names()
        for c in constraint_set.timing:
            assert is_posynomial_in(c.delay, labels), (name, c.name)
        for s in constraint_set.slopes:
            assert is_posynomial_in(s.slope, labels), (name, s.name)
        for n in constraint_set.noise:
            assert is_posynomial_in(n.expr, labels), (name, n.name)


def test_all_area_posynomials_consistent(circuits):
    for name, circuit in circuits.items():
        env = circuit.size_table.default_env()
        assert circuit.area_posynomial().evaluate(env) == pytest.approx(
            circuit.total_width(env), rel=1e-9
        ), name


def test_all_nominal_delays_finite(circuits, library):
    for name, circuit in circuits.items():
        nominal = nominal_delay(circuit, library)
        assert 0.0 < nominal < 1e5, (name, nominal)
