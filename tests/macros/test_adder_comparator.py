"""64-bit dual-rail domino CLA adder and 32-bit comparator structure tests."""

import pytest

from repro.macros import MacroSpec
from repro.netlist import StageKind, validate_circuit
from repro.sizing import PathExtractor, longest_path_length


@pytest.fixture(scope="module")
def adder16(database, tech):
    return database.generate(
        "adder/dual_rail_domino_cla", MacroSpec("adder", 16), tech
    )


class TestDualRailCLA:
    def test_width_restrictions(self, database):
        gen = database.generator("adder/dual_rail_domino_cla")
        assert gen.applicable(MacroSpec("adder", 16))
        assert gen.applicable(MacroSpec("adder", 64))
        assert not gen.applicable(MacroSpec("adder", 8))
        assert not gen.applicable(MacroSpec("adder", 24))

    def test_validates(self, adder16):
        report = validate_circuit(adder16)
        assert report.ok, report.errors

    def test_outputs(self, adder16):
        sums = [o for o in adder16.primary_outputs if o.startswith("sum")]
        assert len(sums) == 16
        assert "cout" in adder16.primary_outputs

    def test_dual_rail_level1(self, adder16):
        """Each bit carries g, k, p and p̄ domino nodes."""
        for rail in ("g", "k", "p", "pb"):
            stage = adder16.stage(f"{rail}3_dom")
            assert stage.kind is StageKind.DOMINO
            assert stage.clocked  # level 1 is D1

    def test_lookahead_legs_ragged(self, adder16):
        g_group = adder16.stage("G0_dom")
        assert sorted(g_group.leg_sizes) == [1, 2, 3, 4]
        # The K rail is the *absorb* form (no all-propagate leg): the
        # complement-carry recursion is c̄ = A + P·c̄_in, so folding the
        # all-propagate term into the group rail would assert "no carry"
        # for carries merely passing through (caught by SVC401).
        k_group = adder16.stage("K0_dom")
        assert sorted(k_group.leg_sizes) == [1, 2, 3, 4]

    def test_level2_is_d2(self, adder16):
        assert not adder16.stage("G0_dom").clocked

    def test_regular_labels_shared_across_bits(self, adder16):
        assert adder16.stage("g0_dom").size_vars == adder16.stage("g7_dom").size_vars
        assert adder16.stage("G0_dom").size_vars == adder16.stage("G3_dom").size_vars

    def test_sum_xor_legs(self, adder16):
        sum5 = adder16.stage("sum5_dom")
        assert sum5.leg_sizes == (2, 2)  # p·c̄ + p̄·c
        sum0 = adder16.stage("sum0_dom")
        assert sum0.leg_sizes == (1,)    # carry-in is 0: sum = p

    def test_depth_is_lookahead_not_ripple(self, database, tech, adder16):
        adder64 = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 64), tech
        )
        # 4x the width costs only the supergroup carry level (2 stages x
        # both rails), not a 4x-deep ripple.
        assert longest_path_length(adder64) <= longest_path_length(adder16) + 4

    def test_transistor_scale(self, database, tech):
        adder64 = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 64), tech
        )
        assert 3000 < adder64.transistor_count() < 10000

    def test_raw_path_space_huge(self, database, tech):
        """The Section-5.2 precondition: raw topological paths in the tens of
        thousands at 64 bits."""
        adder64 = database.generate(
            "adder/dual_rail_domino_cla", MacroSpec("adder", 64), tech
        )
        assert PathExtractor(adder64).count() > 32_000

    def test_static_ripple_alternative(self, database, tech):
        ripple = database.generate("adder/static_ripple", MacroSpec("adder", 8), tech)
        assert validate_circuit(ripple).ok
        assert longest_path_length(ripple) > 8


@pytest.fixture(scope="module")
def cmp_xorsum2(database, tech):
    return database.generate(
        "comparator/xorsum2", MacroSpec("comparator", 32), tech
    )


class TestComparators:
    def test_all_variants_validate(self, database, tech):
        for name in ("comparator/xorsum2", "comparator/xorsum1", "comparator/xorsum4"):
            c = database.generate(name, MacroSpec("comparator", 32), tech)
            assert validate_circuit(c).ok, name

    def test_xorsum2_figure7_structure(self, cmp_xorsum2):
        d1 = [s for s in cmp_xorsum2.stages if s.name.startswith("xs") and s.is_dynamic]
        assert len(d1) == 16  # Xorsum2 x16
        assert all(s.clocked for s in d1)
        assert all(s.leg_sizes == (2, 2, 2, 2) for s in d1)
        d2 = [s for s in cmp_xorsum2.stages if s.name.startswith("nor") and s.is_dynamic]
        assert len(d2) == 2   # Nor4 rank combining 8 pair signals
        assert all(not s.clocked for s in d2)

    def test_xorsum1_structure(self, database, tech):
        c = database.generate("comparator/xorsum1", MacroSpec("comparator", 32), tech)
        d1 = [s for s in c.stages if s.name.startswith("xs") and s.is_dynamic]
        assert len(d1) == 32
        d2 = [s for s in c.stages if s.name.startswith("nor") and s.is_dynamic]
        assert len(d2) == 2
        assert all(len(s.leg_sizes) == 8 for s in d2)  # Nor8

    def test_xorsum4_ends_in_inverter(self, database, tech):
        c = database.generate("comparator/xorsum4", MacroSpec("comparator", 32), tech)
        out_stage = c.driver_of("equal")
        assert out_stage.kind is StageKind.INV

    def test_xorsum2_ends_in_two_input_gate(self, cmp_xorsum2):
        out_stage = cmp_xorsum2.driver_of("equal")
        assert len(out_stage.inputs) == 2

    def test_width_must_decompose(self, database):
        gen = database.generator("comparator/xorsum4")
        assert gen.applicable(MacroSpec("comparator", 32))
        assert not gen.applicable(MacroSpec("comparator", 20))
