"""Functional verification of generated macros with the transient simulator.

These are the "re-ran PathMill/SPICE to verify" checks of Section 6.1 turned
into logic tests: drive a sized macro with concrete input vectors and check
the settled output voltages implement the macro's truth function.
"""


import pytest

from repro.macros import MacroSpec
from repro.sim import TransientSimulator, clock, constant


def _simulate_static(circuit, tech, input_values, settle=3000.0):
    """Settle a static circuit at constant inputs; returns final voltages."""
    env = {name: 2.0 for name in circuit.size_table.free_names()}
    devices = circuit.expand_transistors(env)
    extra = {
        net.name: net.fixed_cap
        for net in circuit.nets.values()
        if net.fixed_cap > 0
    }
    sim = TransientSimulator(devices, tech, extra_caps=extra)
    stimuli = {
        name: constant(tech.vdd if value else 0.0)
        for name, value in input_values.items()
    }
    result = sim.run(stimuli, duration=settle, dt=4.0)
    return {net: result.final(net) for net in circuit.primary_outputs}


def _is_high(v, vdd):
    return v > 0.8 * vdd


def _is_low(v, vdd):
    return v < 0.2 * vdd


class TestStaticMuxFunction:
    @pytest.mark.parametrize("selected", [0, 1, 2, 3])
    def test_strong_mutex_selects(self, database, tech, selected):
        mux = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=10.0), tech
        )
        inputs = {f"s{i}": (i == selected) for i in range(4)}
        inputs.update({f"in{i}": (i == selected) for i in range(4)})
        outs = _simulate_static(mux, tech, inputs)
        assert _is_high(outs["out"], tech.vdd)

    def test_strong_mutex_passes_zero(self, database, tech):
        mux = database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=10.0), tech
        )
        inputs = {f"s{i}": (i == 2) for i in range(4)}
        inputs.update({f"in{i}": (i != 2) for i in range(4)})
        outs = _simulate_static(mux, tech, inputs)
        assert _is_low(outs["out"], tech.vdd)

    @pytest.mark.parametrize("select,expected_from", [(0, "in1"), (1, "in0")])
    def test_encoded_2to1(self, database, tech, select, expected_from):
        """pass0 conducts on selb (select low -> in0? see steering): verify
        both select values route exactly one input."""
        mux = database.generate(
            "mux/encoded_select_2to1", MacroSpec("mux", 2, output_load=10.0), tech
        )
        for driven_value in (0, 1):
            inputs = {"select": bool(select)}
            # Drive the routed input with driven_value, the other opposite.
            routed = "in1" if select else "in0"
            other = "in0" if select else "in1"
            inputs[routed] = bool(driven_value)
            inputs[other] = not bool(driven_value)
            outs = _simulate_static(mux, tech, inputs)
            if driven_value:
                assert _is_high(outs["out"], tech.vdd)
            else:
                assert _is_low(outs["out"], tech.vdd)


class TestZeroDetectFunction:
    def test_all_zero_detected(self, database, tech):
        zdet = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", 8, output_load=10.0),
            tech,
        )
        outs = _simulate_static(zdet, tech, {f"a{i}": False for i in range(8)})
        assert _is_high(outs["zero"], tech.vdd)

    @pytest.mark.parametrize("hot", [0, 3, 7])
    def test_single_one_rejected(self, database, tech, hot):
        zdet = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", 8, output_load=10.0),
            tech,
        )
        outs = _simulate_static(
            zdet, tech, {f"a{i}": (i == hot) for i in range(8)}
        )
        assert _is_low(outs["zero"], tech.vdd)

    def test_odd_width_sense_correct(self, database, tech):
        """Widths that force non-uniform tree chunking must keep polarity."""
        zdet = database.generate(
            "zero_detect/static_tree", MacroSpec("zero_detect", 6, output_load=10.0),
            tech,
        )
        all_zero = _simulate_static(zdet, tech, {f"a{i}": False for i in range(6)})
        one_hot = _simulate_static(
            zdet, tech, {f"a{i}": (i == 4) for i in range(6)}
        )
        assert _is_high(all_zero["zero"], tech.vdd)
        assert _is_low(one_hot["zero"], tech.vdd)


class TestDecoderFunction:
    @pytest.mark.parametrize("code", [0, 1, 2, 3])
    def test_flat_2to4_one_hot(self, database, tech, code):
        dec = database.generate(
            "decoder/flat_static", MacroSpec("decoder", 2, output_load=10.0), tech
        )
        inputs = {f"a{bit}": bool((code >> bit) & 1) for bit in range(2)}
        outs = _simulate_static(dec, tech, inputs)
        for out_code in range(4):
            if out_code == code:
                assert _is_high(outs[f"o{out_code}"], tech.vdd), out_code
            else:
                assert _is_low(outs[f"o{out_code}"], tech.vdd), out_code

    def test_predecoded_4to16_spot_checks(self, database, tech):
        dec = database.generate(
            "decoder/predecoded", MacroSpec("decoder", 4, output_load=10.0), tech
        )
        for code in (0, 5, 15):
            inputs = {f"a{bit}": bool((code >> bit) & 1) for bit in range(4)}
            outs = _simulate_static(dec, tech, inputs)
            assert _is_high(outs[f"o{code}"], tech.vdd)
            others = [v for k, v in outs.items() if k != f"o{code}"]
            assert all(_is_low(v, tech.vdd) for v in others)


class TestIncrementorFunction:
    @pytest.mark.parametrize("a,cin", [(0b011, 1), (0b111, 1), (0b101, 0), (0b000, 1)])
    def test_ripple_3bit_adds(self, database, tech, a, cin):
        inc = database.generate(
            "incrementor/ripple", MacroSpec("incrementor", 3, output_load=10.0), tech
        )
        inputs = {f"a{bit}": bool((a >> bit) & 1) for bit in range(3)}
        inputs["cin"] = bool(cin)
        outs = _simulate_static(inc, tech, inputs, settle=5000.0)
        expected = a + cin
        for bit in range(3):
            want = bool((expected >> bit) & 1)
            got = _is_high(outs[f"sum{bit}"], tech.vdd)
            got_low = _is_low(outs[f"sum{bit}"], tech.vdd)
            assert got == want and got_low != want, (bit, outs)
        want_cout = bool(expected >> 3)
        assert _is_high(outs["cout"], tech.vdd) == want_cout


class TestDominoMuxFunction:
    def test_unsplit_domino_evaluates_selected_one(self, database, tech):
        mux = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 4, output_load=10.0), tech
        )
        env = {name: 3.0 for name in mux.size_table.free_names()}
        devices = mux.expand_transistors(env)
        extra = {n.name: n.fixed_cap for n in mux.nets.values() if n.fixed_cap > 0}
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        stim = {
            "clk": clock(tech.vdd, period=3000.0, cycles=1, start_low=1500.0),
        }
        for i in range(4):
            stim[f"s{i}"] = constant(tech.vdd if i == 1 else 0.0)
            stim[f"in{i}"] = constant(tech.vdd if i == 1 else 0.0)
        result = sim.run(stim, duration=3000.0, dt=4.0)
        idx_eval = int(2900.0 / 4.0)
        assert result.v("out")[idx_eval] > 0.8 * tech.vdd

    def test_unsplit_domino_stays_low_for_zero(self, database, tech):
        mux = database.generate(
            "mux/unsplit_domino", MacroSpec("mux", 4, output_load=10.0), tech
        )
        env = {name: 3.0 for name in mux.size_table.free_names()}
        devices = mux.expand_transistors(env)
        extra = {n.name: n.fixed_cap for n in mux.nets.values() if n.fixed_cap > 0}
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        stim = {"clk": clock(tech.vdd, period=3000.0, cycles=1, start_low=1500.0)}
        for i in range(4):
            stim[f"s{i}"] = constant(tech.vdd if i == 1 else 0.0)
            stim[f"in{i}"] = constant(0.0)  # selected data is 0
        result = sim.run(stim, duration=3000.0, dt=4.0)
        idx_eval = int(2900.0 / 4.0)
        assert result.v("out")[idx_eval] < 0.2 * tech.vdd
