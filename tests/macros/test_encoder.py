"""Encoder macro tests: structure, sizing, and functional verification."""

import pytest

from repro.macros import MacroSpec
from repro.netlist import StageKind, validate_circuit
from repro.sim import TransientSimulator, clock, constant
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


class TestStructure:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_static_validates(self, database, tech, n):
        enc = database.generate("encoder/static_tree", MacroSpec("encoder", n), tech)
        assert validate_circuit(enc).ok
        outs = [o for o in enc.primary_outputs if o.startswith("o")]
        assert len(outs) == n
        assert len(enc.primary_inputs) == 1 << n

    def test_domino_one_node_per_bit(self, database, tech):
        enc = database.generate("encoder/domino", MacroSpec("encoder", 3), tech)
        dominos = [s for s in enc.stages if s.kind is StageKind.DOMINO]
        assert len(dominos) == 3
        # Each bit ORs half the input space.
        assert all(len(s.leg_sizes) == 4 for s in dominos)

    def test_width_range(self, database):
        gen = database.generator("encoder/static_tree")
        assert not gen.applicable(MacroSpec("encoder", 1))
        assert not gen.applicable(MacroSpec("encoder", 7))


class TestSizing:
    @pytest.mark.parametrize("topology", ["encoder/static_tree", "encoder/domino"])
    def test_sizes(self, database, library, tech, topology):
        enc = database.generate(
            topology, MacroSpec("encoder", 3, output_load=20.0), tech
        )
        result = SmartSizer(enc, library).size(
            DelaySpec(data=0.9 * nominal_delay(enc, library))
        )
        assert result.converged


class TestFunction:
    @pytest.mark.parametrize("hot", [0, 3, 5, 7])
    def test_static_encodes_one_hot(self, database, tech, hot):
        enc = database.generate(
            "encoder/static_tree", MacroSpec("encoder", 3, output_load=10.0), tech
        )
        env = {name: 2.0 for name in enc.size_table.free_names()}
        devices = enc.expand_transistors(env)
        sim = TransientSimulator(devices, tech)
        stim = {
            f"i{k}": constant(tech.vdd if k == hot else 0.0) for k in range(8)
        }
        result = sim.run(stim, duration=3000.0, dt=4.0)
        for b in range(3):
            want = (hot >> b) & 1
            v = result.final(f"o{b}")
            if want:
                assert v > 0.8 * tech.vdd, (b, v)
            else:
                assert v < 0.2 * tech.vdd, (b, v)

    def test_domino_encodes_one_hot(self, database, tech):
        enc = database.generate(
            "encoder/domino", MacroSpec("encoder", 2, output_load=10.0), tech
        )
        env = {name: 3.0 for name in enc.size_table.free_names()}
        devices = enc.expand_transistors(env)
        extra = {n.name: n.fixed_cap for n in enc.nets.values() if n.fixed_cap > 0}
        sim = TransientSimulator(devices, tech, extra_caps=extra)
        hot = 2
        stim = {"clk": clock(tech.vdd, period=4000.0, cycles=1, start_low=2000.0)}
        for k in range(4):
            stim[f"i{k}"] = constant(tech.vdd if k == hot else 0.0)
        result = sim.run(stim, duration=4000.0, dt=4.0)
        idx = int(3900 / 4)
        assert result.v("o1")[idx] > 0.8 * tech.vdd   # bit 1 of 2 set
        assert result.v("o0")[idx] < 0.2 * tech.vdd
