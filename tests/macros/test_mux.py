"""Figure-2 mux topology tests: structure, labeling, paper properties."""

import pytest

from repro.macros import MacroSpec
from repro.netlist import PinClass, StageKind, validate_circuit


def _gen(database, tech, name, width, **params):
    spec = MacroSpec("mux", width, output_load=30.0)
    if params:
        spec = spec.with_params(**params)
    return database.generate(name, spec, tech)


class TestStrongMutex:
    def test_structure(self, database, tech):
        mux = _gen(database, tech, "mux/strong_mutex_passgate", 4)
        kinds = [s.kind for s in mux.stages]
        assert kinds.count(StageKind.PASSGATE) == 4
        assert kinds.count(StageKind.INV) == 5  # 4 drivers + output

    def test_paper_labeling(self, database, tech):
        mux = _gen(database, tech, "mux/strong_mutex_passgate", 4)
        names = set(mux.size_table.names())
        assert {"P1", "N1", "N2", "P3", "N3"} <= names
        # "the size of the inverter in the pass-gate is a fixed relation of N2"
        assert mux.size_table["N2i"].ratio_of == ("N2", 0.5)

    def test_labels_shared_across_legs(self, database, tech):
        mux = _gen(database, tech, "mux/strong_mutex_passgate", 8)
        passes = [s for s in mux.stages if s.kind is StageKind.PASSGATE]
        assert len({s.label("pass") for s in passes}) == 1

    def test_distinct_selects(self, database, tech):
        mux = _gen(database, tech, "mux/strong_mutex_passgate", 4)
        selects = {
            s.select_pins()[0].net.name
            for s in mux.stages
            if s.kind is StageKind.PASSGATE
        }
        assert len(selects) == 4

    def test_merge_wire_cap_scales(self, database, tech):
        small = _gen(database, tech, "mux/strong_mutex_passgate", 2)
        big = _gen(database, tech, "mux/strong_mutex_passgate", 8)
        assert big.net("merge").wire_cap > small.net("merge").wire_cap


class TestWeakMutex:
    def test_nor_generates_last_select(self, database, tech):
        mux = _gen(database, tech, "mux/weak_mutex_passgate", 4)
        nor = mux.stage("selnor")
        assert nor.kind is StageKind.NOR
        assert len(nor.inputs) == 3  # n-1 external selects
        assert {"P4", "N4"} <= set(mux.size_table.names())

    def test_external_selects_n_minus_1(self, database, tech):
        mux = _gen(database, tech, "mux/weak_mutex_passgate", 5)
        selects = [n for n in mux.primary_inputs if n.startswith("s")]
        assert len(selects) == 4

    def test_needs_width_3(self, database):
        gens = database.applicable(MacroSpec("mux", 2))
        assert "mux/weak_mutex_passgate" not in {g.name for g in gens}


class TestEncodedSelect:
    def test_single_select_input(self, database, tech):
        mux = _gen(database, tech, "mux/encoded_select_2to1", 2)
        assert "select" in mux.primary_inputs
        assert len([n for n in mux.primary_inputs if n.startswith("s")]) == 1

    def test_complementary_steering(self, database, tech):
        mux = _gen(database, tech, "mux/encoded_select_2to1", 2)
        pass0 = mux.stage("pass0")
        pass1 = mux.stage("pass1")
        assert pass0.select_pins()[0].net.name == "selb"
        assert pass1.select_pins()[0].net.name == "select"

    def test_only_width_2(self, database):
        gen = database.generator("mux/encoded_select_2to1")
        assert gen.applicable(MacroSpec("mux", 2))
        assert not gen.applicable(MacroSpec("mux", 3))


class TestTristate:
    def test_shared_bus(self, database, tech):
        mux = _gen(database, tech, "mux/tristate", 4)
        tris = [s for s in mux.stages if s.kind is StageKind.TRISTATE]
        assert len(tris) == 4
        assert len({s.output.name for s in tris}) == 1

    def test_paper_labels(self, database, tech):
        mux = _gen(database, tech, "mux/tristate", 4)
        assert {"P1", "N1", "P2", "N2"} <= set(mux.size_table.names())


class TestUnsplitDomino:
    def test_single_dynamic_node(self, database, tech):
        mux = _gen(database, tech, "mux/unsplit_domino", 8)
        dominos = [s for s in mux.stages if s.kind is StageKind.DOMINO]
        assert len(dominos) == 1
        (dom,) = dominos
        assert dom.clocked
        assert dom.leg_sizes == (2,) * 8  # select over data per leg

    def test_select_over_data_leg_order(self, database, tech):
        mux = _gen(database, tech, "mux/unsplit_domino", 4)
        (dom,) = [s for s in mux.stages if s.kind is StageKind.DOMINO]
        legs = [p for p in dom.inputs if p.pin_class is not PinClass.CLOCK]
        # Pin order is s, in per leg: even indices select, odd data.
        assert all(
            p.pin_class is PinClass.SELECT for p in legs[0::2]
        )
        assert all(p.pin_class is PinClass.DATA for p in legs[1::2])

    def test_high_skew_output(self, database, tech):
        mux = _gen(database, tech, "mux/unsplit_domino", 8)
        out_inv = mux.stage("outdrv")
        assert out_inv.params.get("skew") == "high"


class TestPartitionedDomino:
    def test_floor_half_partition(self, database, tech):
        mux = _gen(database, tech, "mux/partitioned_domino", 8)
        top = mux.stage("dom_top")
        bot = mux.stage("dom_bot")
        assert len(top.leg_sizes) == 4
        assert len(bot.leg_sizes) == 4

    def test_equal_partitions_share_labels(self, database, tech):
        mux = _gen(database, tech, "mux/partitioned_domino", 8)
        top = mux.stage("dom_top")
        bot = mux.stage("dom_bot")
        assert top.size_vars == bot.size_vars

    def test_unequal_partitions_labeled_separately(self, database, tech):
        mux = _gen(database, tech, "mux/partitioned_domino", 7)
        top = mux.stage("dom_top")
        bot = mux.stage("dom_bot")
        assert top.size_vars != bot.size_vars
        assert {"P3", "N3", "N4"} <= set(mux.size_table.names())

    def test_custom_partition_param(self, database, tech):
        mux = _gen(database, tech, "mux/partitioned_domino", 8, partition=2)
        assert len(mux.stage("dom_top").leg_sizes) == 2
        assert len(mux.stage("dom_bot").leg_sizes) == 6

    def test_invalid_partition_rejected(self, database, tech):
        with pytest.raises(ValueError):
            _gen(database, tech, "mux/partitioned_domino", 8, partition=8)

    def test_nand_combiner(self, database, tech):
        mux = _gen(database, tech, "mux/partitioned_domino", 8)
        combine = mux.stage("combine")
        assert combine.kind is StageKind.NAND
        assert len(combine.inputs) == 2


class TestAllValidate:
    @pytest.mark.parametrize("name,width", [
        ("mux/strong_mutex_passgate", 2),
        ("mux/strong_mutex_passgate", 16),
        ("mux/weak_mutex_passgate", 3),
        ("mux/encoded_select_2to1", 2),
        ("mux/tristate", 12),
        ("mux/unsplit_domino", 16),
        ("mux/partitioned_domino", 16),
    ])
    def test_validates(self, database, tech, name, width):
        mux = _gen(database, tech, name, width)
        report = validate_circuit(mux)
        assert report.ok, report.errors
