"""Rule-engine mechanics: registry, diagnostics, waivers, reporters."""

import json

import pytest

from repro.lint import (
    Diagnostic,
    LintError,
    Location,
    Rule,
    Severity,
    all_rules,
    get_rule,
    lint_circuit,
    parse_waivers,
    render_json,
    render_text,
    rules_in_groups,
)
from repro.lint.registry import register
from repro.lint.waivers import Waiver, apply_waivers
from repro.macros.base import MacroBuilder
from repro.models import Technology

TECH = Technology()


def _broken_circuit():
    """One ERC002 error + one ERC004 warning."""
    builder = MacroBuilder("bad", TECH)
    floating = builder.wire("floating")
    out = builder.output("out")
    a = builder.input("a")
    dangling = builder.wire("nowhere")
    builder.size("P"), builder.size("N")
    builder.inv("i0", floating, out, "P", "N")
    builder.inv("i1", a, dangling, "P", "N")
    return builder.done()


class TestRegistry:
    def test_ids_unique_and_sorted(self):
        ids = [r.id for r in all_rules()]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))

    def test_every_rule_documented(self):
        for rule_obj in all_rules():
            assert rule_obj.title, rule_obj.id
            assert rule_obj.doc, rule_obj.id
            assert rule_obj.severity in (Severity.ERROR, Severity.WARNING)

    def test_expected_families_present(self):
        ids = {r.id for r in all_rules()}
        assert {"ERC001", "ERC101", "CST101", "GP201"} <= ids

    def test_get_rule(self):
        assert get_rule("ERC002").group == "structural"
        with pytest.raises(KeyError):
            get_rule("XYZ999")

    def test_duplicate_id_rejected(self):
        from repro.lint.registry import _REGISTRY

        try:
            with pytest.raises(ValueError, match="duplicate"):
                register(
                    Rule("ERC001", "again", "structural", Severity.ERROR)
                )
            with pytest.raises(ValueError, match="unknown rule group"):
                register(Rule("ZZZ001", "bad group", "nope", Severity.ERROR))
        finally:
            _REGISTRY.pop("ZZZ001", None)

    def test_rules_in_groups_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown rule group"):
            rules_in_groups(["structural", "bogus"])

    def test_runner_rejects_non_circuit_groups(self):
        with pytest.raises(ValueError):
            lint_circuit(_broken_circuit(), groups=("gp",))


class TestDiagnostics:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING
        assert str(Severity.ERROR) == "error"

    def test_location_rendering(self):
        assert str(Location(stage="m0", pin="s")) == "stage m0 pin s"
        assert str(Location(net="carry7")) == "net carry7"
        assert str(Location()) == ""
        assert Location().empty

    def test_diagnostic_text_and_format(self):
        diag = Diagnostic(
            "ERC002", Severity.ERROR, "loaded but undriven",
            Location(net="x"),
        )
        assert diag.text == "net x: loaded but undriven"
        assert diag.format() == "ERC002 error: net x: loaded but undriven"
        assert "waived" in diag.with_waived().format()

    def test_report_views(self):
        report = lint_circuit(_broken_circuit())
        assert not report.ok
        assert report.by_rule("ERC002")
        assert report.by_rule("ERC004")
        assert all(d.severity is Severity.ERROR for d in report.errors)
        with pytest.raises(LintError) as excinfo:
            report.raise_if_failed()
        assert isinstance(excinfo.value, ValueError)
        assert excinfo.value.report is report

    def test_only_filter(self):
        report = lint_circuit(_broken_circuit(), only=["ERC004"])
        assert report.ok  # the ERC002 error was not run
        assert report.warnings


class TestWaivers:
    def test_parse(self):
        waivers = parse_waivers(
            "# comment\n"
            "\n"
            "ERC103  stage cla*   # reviewed\n"
            "GP203\n"
        )
        assert waivers == [
            Waiver("ERC103", "stage cla*", "reviewed"),
            Waiver("GP203", "*", ""),
        ]

    def test_matching(self):
        diag = Diagnostic(
            "ERC103", Severity.WARNING, "hazard", Location(stage="cla7")
        )
        assert Waiver("ERC103", "stage cla*").matches(diag)
        assert Waiver("ERC1*", "*").matches(diag)
        assert not Waiver("ERC103", "stage sum*").matches(diag)
        assert not Waiver("GP*", "*").matches(diag)
        bare = Diagnostic("ERC007", Severity.WARNING, "unused")
        assert Waiver("ERC007", "*").matches(bare)

    def test_waived_errors_do_not_fail(self):
        circuit = _broken_circuit()
        report = lint_circuit(circuit, waivers=parse_waivers("ERC00*\n"))
        assert report.ok
        assert report.waived
        report.raise_if_failed()  # does not raise

    def test_apply_waivers_preserves_order(self):
        diags = [
            Diagnostic("A100", Severity.ERROR, "one"),
            Diagnostic("B200", Severity.ERROR, "two"),
        ]
        out = apply_waivers(diags, [Waiver("B200")])
        assert [d.rule_id for d in out] == ["A100", "B200"]
        assert [d.waived for d in out] == [False, True]


class TestReporters:
    def test_text(self):
        report = lint_circuit(_broken_circuit())
        text = render_text(report)
        assert "bad: ERC002 error: net floating: loaded but undriven" in text
        assert "1 error(s)" in text

    def test_text_hides_waived_by_default(self):
        report = lint_circuit(
            _broken_circuit(), waivers=parse_waivers("ERC002\n")
        )
        assert "ERC002" not in render_text(report)
        assert "ERC002" in render_text(report, show_waived=True)
        assert "1 waived" in render_text(report)

    def test_json(self):
        report = lint_circuit(_broken_circuit())
        payload = json.loads(render_json(report))
        assert payload["subject"] == "bad"
        assert payload["ok"] is False
        rules = {d["rule"] for d in payload["diagnostics"]}
        assert {"ERC002", "ERC004"} <= rules
