"""Positive and negative tests for the GP pre-solve rules GP201–GP204."""

from repro.lint.rules_gp import lint_gp
from repro.netlist.sizing_vars import SizeTable
from repro.posy import Monomial, Posynomial
from repro.sizing.gp import GeometricProgram


def _rules(report):
    return [d.rule_id for d in report.diagnostics]


class TestGP201WellFormedness:
    def test_negative_coefficient(self):
        # Monomial's constructor rejects bad coefficients, so forge the
        # malformed term through Posynomial's trusting internal ctor — the
        # exact "silently outside GP form" case the rule screens for.
        gp = GeometricProgram(Monomial.variable("x"))
        gp.add_inequality(Posynomial({(("x", 1.0),): -2.0}), "bad")
        report = lint_gp(gp)
        assert "GP201" in _rules(report)
        diag = report.by_rule("GP201")[0]
        assert "not positive finite" in diag.message
        assert diag.location.constraint == "bad"

    def test_non_finite_exponent(self):
        gp = GeometricProgram(Posynomial({(("x", float("inf")),): 1.0}))
        report = lint_gp(gp)
        diag = report.by_rule("GP201")[0]
        assert "exponent of x is not finite" in diag.message
        assert diag.location.constraint == "objective"

    def test_well_formed_program_clean(self):
        gp = GeometricProgram(Monomial.variable("x"))
        gp.add_upper_bound(
            Monomial.variable("x") + Monomial.constant(0.5), 2.0, "c0"
        )
        assert not lint_gp(gp).by_rule("GP201")


class TestGP202UndeclaredVariable:
    def test_typo_variable(self):
        table = SizeTable()
        table.declare("w")
        gp = GeometricProgram(Monomial.variable("w"))
        gp.add_upper_bound(Monomial.variable("typo"), 5.0, "c0")
        report = lint_gp(gp, table)
        diags = report.by_rule("GP202")
        assert len(diags) == 1
        assert "size variable typo is not declared" in diags[0].message

    def test_declared_variables_clean(self):
        table = SizeTable()
        table.declare("w")
        gp = GeometricProgram(Monomial.variable("w"))
        gp.add_upper_bound(Monomial.variable("w"), 5.0, "c0")
        assert not lint_gp(gp, table).by_rule("GP202")

    def test_no_table_skips_check(self):
        gp = GeometricProgram(Monomial.variable("anything"))
        gp.add_upper_bound(Monomial.variable("anything"), 5.0, "c0")
        assert not lint_gp(gp).by_rule("GP202")


class TestGP203UnconstrainedVariable:
    def test_objective_only_variable(self):
        table = SizeTable()
        table.declare("w")
        table.declare("u")
        gp = GeometricProgram(
            Monomial.variable("w") * Monomial.variable("u")
        )
        gp.add_upper_bound(Monomial.variable("w"), 5.0, "c0")
        report = lint_gp(gp, table)
        diags = report.by_rule("GP203")
        assert len(diags) == 1
        assert "size variable u appears in no constraint" in diags[0].message

    def test_all_constrained_clean(self):
        table = SizeTable()
        table.declare("w")
        gp = GeometricProgram(Monomial.variable("w"))
        gp.add_upper_bound(Monomial.variable("w"), 5.0, "c0")
        assert not lint_gp(gp, table).by_rule("GP203")

    def test_no_table_fallback(self):
        gp = GeometricProgram(
            Monomial.variable("w") * Monomial.variable("u")
        )
        gp.add_upper_bound(Monomial.variable("w"), 5.0, "c0")
        diags = lint_gp(gp).by_rule("GP203")
        assert len(diags) == 1
        assert "u appears only in the objective" in diags[0].message


class TestGP204InfeasibleScreen:
    def test_box_already_violates(self):
        gp = GeometricProgram(Monomial.variable("x"))
        gp.add_upper_bound(Monomial.variable("x"), 1.0, "tight")
        gp.set_bounds("x", 2.0, 10.0)
        report = lint_gp(gp)
        diags = report.by_rule("GP204")
        assert len(diags) == 1
        assert "no sizing can satisfy" in diags[0].message
        assert diags[0].location.constraint == "tight"

    def test_negative_exponents_use_upper_bound(self):
        # min of 4/x over [2, 10] is 0.4 — feasible, must NOT be flagged.
        gp = GeometricProgram(Monomial.variable("x"))
        gp.add_upper_bound(
            Monomial(4.0, {"x": -1.0}), 1.0, "inverse"
        )
        gp.set_bounds("x", 2.0, 10.0)
        assert not lint_gp(gp).by_rule("GP204")

    def test_feasible_box_clean(self):
        gp = GeometricProgram(Monomial.variable("x"))
        gp.add_upper_bound(Monomial.variable("x"), 1.0, "tight")
        gp.set_bounds("x", 0.5, 10.0)
        assert not lint_gp(gp).by_rule("GP204")
