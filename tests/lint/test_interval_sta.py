"""DFA303 interval STA: box bounds, soundness, and the pre-GP screen.

The soundness contract under test (ISSUE acceptance):

* no circuit the sizer successfully sizes is ever ``provably-infeasible``
  at that spec (no false rejection);
* at least one over-constrained fixture per macro class is rejected
  *before any GP solve* (asserted by making ``GeometricProgram.solve``
  explode);
* ``provably-feasible`` is only claimed when the GP really is feasible.
"""

import itertools

import pytest

from repro.lint.dataflow.interval import (
    posy_box_bounds,
    screen_feasibility,
)
from repro.macros import MacroSpec
from repro.macros.base import MacroBuilder
from repro.posy import Monomial, Posynomial
from repro.sizing import DelaySpec, SizingError, SmartSizer
from repro.sizing.engine import nominal_delay
from repro.sizing.gp import GeometricProgram


# One representative topology per macro class, at an applicable width.
CLASS_REPRESENTATIVES = [
    ("adder", "adder/dual_rail_domino_cla", 16),
    ("comparator", "comparator/xorsum1", 32),
    ("decoder", "decoder/domino", 4),
    ("decrementor", "decrementor/prefix", 8),
    ("encoder", "encoder/domino", 4),
    ("incrementor", "incrementor/prefix", 8),
    ("mux", "mux/encoded_select_2to1", 2),
    ("register_file", "register_file/domino_bitline", 8),
    ("shifter", "shifter/passgate_barrel", 8),
    ("zero_detect", "zero_detect/domino", 8),
]


def _generate(database, tech, macro_type, name, width):
    gen = database.generator(name)
    spec = MacroSpec(macro_type, width)
    assert gen.applicable(spec), (name, width)
    return gen.generate(spec, tech)


class TestPosyBoxBounds:
    BOX = {"x": (0.5, 4.0), "y": (1.0, 8.0), "z": (0.25, 2.0)}

    def _bounds(self, name):
        return self.BOX[name]

    def _brute_force(self, expr, samples=5):
        """Evaluate over a dense grid (corners included): every value must
        land inside the interval."""
        names = sorted({v for m in expr for v in m.exponents})
        axes = [
            [self.BOX[n][0] + t * (self.BOX[n][1] - self.BOX[n][0]) / (samples - 1)
             for t in range(samples)]
            for n in names
        ]
        values = []
        for point in itertools.product(*axes):
            env = dict(zip(names, point))
            total = 0.0
            for mono in expr:
                v = mono.coefficient
                for var, exp in mono.exponents.items():
                    v *= env[var] ** exp
                total += v
            values.append(total)
        return values

    def test_single_monomial_bounds_are_exact(self):
        mono = Monomial(3.0, {"x": 1.0, "y": -2.0})
        expr = mono.as_posynomial()
        lo, hi = posy_box_bounds(expr, self._bounds)
        values = self._brute_force(expr)
        assert lo == pytest.approx(min(values))
        assert hi == pytest.approx(max(values))

    def test_posynomial_interval_contains_all_values(self):
        expr = Posynomial.from_terms([
            Monomial(2.0, {"x": 1.0}),
            Monomial(1.5, {"x": -1.0, "y": 1.0}),
            Monomial(0.3, {"y": -0.5, "z": 2.0}),
            Monomial.constant(0.7),
        ])
        lo, hi = posy_box_bounds(expr, self._bounds)
        values = self._brute_force(expr)
        assert lo <= min(values) + 1e-12
        assert hi >= max(values) - 1e-12
        # Not vacuous: the interval is within 2x of the true range.
        assert lo >= 0.25 * min(values)
        assert hi <= 4.0 * max(values)

    def test_fractional_and_negative_exponents(self):
        expr = Posynomial.from_terms([
            Monomial(1.0, {"x": 0.5, "z": -1.5}),
            Monomial(4.0, {"y": -1.0}),
        ])
        lo, hi = posy_box_bounds(expr, self._bounds)
        for value in self._brute_force(expr):
            assert lo - 1e-12 <= value <= hi + 1e-12

    def test_empty_posynomial_is_zero(self):
        assert posy_box_bounds(Posynomial.zero(), self._bounds) == (0.0, 0.0)


class TestNoFalseRejection:
    """A spec the sizer meets must never screen as infeasible — checked
    both through the engine (pre_screen defaults on, so a successful size
    proves the screen let it through) and directly."""

    def test_chain_sizes_with_screen_enabled(self, inverter_chain, library):
        spec = DelaySpec(data=0.9 * nominal_delay(inverter_chain, library))
        sizer = SmartSizer(inverter_chain, library)
        assert sizer.pre_screen  # the default
        assert sizer.size(spec).converged
        screen = screen_feasibility(inverter_chain, library, spec)
        assert not screen.infeasible

    def test_static_mux_sizes_with_screen_enabled(self, small_mux, library):
        spec = DelaySpec(data=0.9 * nominal_delay(small_mux, library))
        assert SmartSizer(small_mux, library).size(spec).converged
        assert not screen_feasibility(small_mux, library, spec).infeasible

    def test_domino_mux_sizes_with_screen_enabled(self, domino_mux, library):
        spec = DelaySpec(data=0.9 * nominal_delay(domino_mux, library))
        assert SmartSizer(domino_mux, library).size(spec).converged
        assert not screen_feasibility(domino_mux, library, spec).infeasible


class TestOverConstrainedRejection:
    @pytest.mark.parametrize(
        "macro_type,name,width", CLASS_REPRESENTATIVES,
        ids=[name for _, name, _ in CLASS_REPRESENTATIVES],
    )
    def test_one_ps_is_provably_infeasible(
        self, database, tech, library, macro_type, name, width
    ):
        circuit = _generate(database, tech, macro_type, name, width)
        screen = screen_feasibility(circuit, library, DelaySpec(data=1.0))
        assert screen.infeasible, screen.verdict
        assert screen.report.errors  # a DFA303 finding backs the verdict
        assert any(d.rule_id == "DFA303" for d in screen.report.errors)

    def test_rejection_happens_before_any_gp_solve(
        self, database, tech, library, monkeypatch
    ):
        circuit = _generate(
            database, tech, "zero_detect", "zero_detect/domino", 8
        )

        def _boom(self, *args, **kwargs):
            raise AssertionError("GP solve reached despite the screen")

        monkeypatch.setattr(GeometricProgram, "solve", _boom)
        with pytest.raises(SizingError, match="provably"):
            SmartSizer(circuit, library).size(DelaySpec(data=1.0))

    def test_pre_screen_off_skips_the_screen(self, database, tech, library):
        """The opt-out exists for the advisor (which screens itself): with
        ``pre_screen=False`` the rejection comes from the GP-side machinery
        (GP204 pre-solve lint or the solver), never the interval screen."""
        circuit = _generate(
            database, tech, "zero_detect", "zero_detect/domino", 8
        )
        sizer = SmartSizer(circuit, library, pre_screen=False)
        with pytest.raises(SizingError) as excinfo:
            sizer.size(DelaySpec(data=1.0))
        assert "provably infeasible before GP" not in str(excinfo.value)


class TestProvablyFeasible:
    def _chain(self, tech):
        builder = MacroBuilder("invchain2", tech)
        a = builder.input("in")
        n1 = builder.wire("n1")
        out = builder.output("out", load=20.0)
        for label in ("P0", "N0", "P1", "N1"):
            builder.size(label)
        builder.inv("i0", a, n1, "P0", "N0")
        builder.inv("i1", n1, out, "P1", "N1")
        return builder.done()

    def test_loose_spec_on_static_chain_is_feasible(self, tech, library):
        circuit = self._chain(tech)
        screen = screen_feasibility(circuit, library, DelaySpec(data=400.0))
        assert screen.feasible, screen.verdict
        # The claim is checked against the real GP: it must succeed.
        result = SmartSizer(circuit, library, pre_screen=False).size(
            DelaySpec(data=400.0)
        )
        assert result.converged

    def test_multi_phase_circuit_never_claims_feasible(
        self, database, tech, library
    ):
        """Segment budgets cannot be certified from a hulled whole-path
        value, so multi-phase dominoes cap out at ``unknown``."""
        circuit = _generate(database, tech, "decoder", "decoder/domino", 4)
        screen = screen_feasibility(circuit, library, DelaySpec(data=4000.0))
        assert not screen.feasible


class TestWideningGoesUnknown:
    def test_cyclic_circuit_is_unknown_not_infeasible(self, tech, library):
        builder = MacroBuilder("loop", tech)
        for label in ("P", "N"):
            builder.size(label)
        a = builder.input("a")
        x, fb = builder.wire("x"), builder.wire("fb")
        builder.nand("g", [a, fb], x, "P", "N")
        builder.inv("i", x, fb, "P", "N")
        circuit = builder.done()
        screen = screen_feasibility(circuit, library, DelaySpec(data=1.0))
        assert screen.widened
        assert screen.verdict == "unknown"
