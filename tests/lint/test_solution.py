"""OPT7xx solution-certificate rules, mutant corpus, and cache audits."""

import json

import pytest

from repro.lint import lint_circuit
from repro.lint.incremental import RuleResultCache, serialize_diagnostic
from repro.lint.solution import (
    CERTIFICATE_FORMAT,
    SolutionCertificateStore,
    check_certificate,
    widths_digest,
)
from repro.lint.solution.corpus import clean_cases
from repro.lint.solution.mutate import solution_mutants, solved_base
from repro.lint.solution.rules import build_solution_options

OPT_RULES = ("OPT701", "OPT702", "OPT703", "OPT704", "OPT705")


def _opt(report):
    return sorted({
        d.rule_id for d in report.diagnostics
        if d.rule_id.startswith("OPT7")
    })


def _solution(circuit, options, **kwargs):
    return lint_circuit(
        circuit, groups=("solution",), options=options, **kwargs
    )


@pytest.fixture(scope="module")
def base():
    return solved_base()


# -- registration ----------------------------------------------------------


def test_rules_registered():
    from repro.lint.registry import all_rules

    ids = {r.id for r in all_rules()}
    for rule_id in OPT_RULES:
        assert rule_id in ids


def test_rules_inert_without_payload(base):
    report = _solution(base.circuit, {})
    assert not report.diagnostics


# -- the honest point passes every rule ------------------------------------


def test_honest_collapsed_point_is_clean(base):
    options = build_solution_options(
        base.widths, base.spec, classes=base.classes,
        certificate=base.certificate,
    )
    report = _solution(base.circuit, {"solution": options})
    assert not report.errors, [d.message for d in report.errors]


# -- each mutant is caught by exactly its intended rule --------------------


def test_every_mutant_flagged_without_cross_fire():
    for mutant in solution_mutants():
        report = _solution(mutant.circuit, mutant.options)
        fired = _opt(report)
        assert fired == [mutant.expected_rule], (
            f"{mutant.label}: expected exactly {mutant.expected_rule}, "
            f"fired {fired}: "
            f"{[d.message for d in report.diagnostics][:4]}"
        )


def test_mutant_corpus_covers_every_rule():
    expected = {m.expected_rule for m in solution_mutants()}
    assert expected == set(OPT_RULES)


# -- clean corpus + byte-identical warm replay -----------------------------


def test_clean_corpus_error_free_and_replays_byte_identically(tmp_path):
    cache_path = str(tmp_path / "rules.jsonl")

    def sweep():
        cache = RuleResultCache(cache_path)
        findings = []
        for _label, circuit, options, _cert in clean_cases():
            report = _solution(circuit, options, cache=cache)
            assert not report.errors
            findings.extend(
                serialize_diagnostic(d) for d in report.diagnostics
            )
        for mutant in solution_mutants():
            report = _solution(mutant.circuit, mutant.options, cache=cache)
            findings.extend(
                serialize_diagnostic(d) for d in report.diagnostics
            )
        cache.flush()
        return json.dumps(findings, sort_keys=True), cache.stats

    cold, cold_stats = sweep()
    warm, warm_stats = sweep()
    assert cold == warm
    assert cold_stats.replayed == 0
    assert warm_stats.executed == 0
    assert warm_stats.replayed == warm_stats.invocations > 0


# -- certificate binding checks (OPT704/OPT705 unit behavior) --------------


def test_check_certificate_bindings(base):
    cert = dict(base.certificate)
    env = dict(base.widths)

    ok, reason = check_certificate(
        cert, key=base.cache_key, env=env, tolerance=2.0
    )
    assert ok, reason

    ok, reason = check_certificate(
        None, key=base.cache_key, env=env, tolerance=2.0
    )
    assert not ok and "no certificate" in reason

    ok, reason = check_certificate(
        cert, key="deadbeef", env=env, tolerance=2.0
    )
    assert not ok and "key" in reason

    tampered = dict(env)
    tampered[sorted(tampered)[0]] *= 2.0
    ok, reason = check_certificate(
        cert, key=base.cache_key, env=tampered, tolerance=2.0
    )
    assert not ok and "digest" in reason

    forged = dict(cert)
    forged["ok"] = False
    ok, reason = check_certificate(
        forged, key=base.cache_key, env=env, tolerance=2.0
    )
    assert not ok

    stale = dict(cert)
    stale["facets"] = dict(cert["facets"], sizing="0" * 16)
    ok, reason = check_certificate(
        stale, key=base.cache_key, env=env, tolerance=2.0,
        facets=cert["facets"],
    )
    assert not ok and "stale" in reason


def test_opt704_quiet_on_fresh_certificate(base):
    report = _solution(
        base.circuit, {"solution": {"certificate": dict(base.certificate)}}
    )
    assert _opt(report) == []


def test_opt705_tolerates_entry_without_certificate(base):
    entry = {"key": "abc123", "env": dict(base.widths), "tolerance": 2.0}
    report = _solution(
        base.circuit,
        {"solution": {"cache": {"entries": [entry], "certificates": {}}}},
    )
    assert _opt(report) == []


# -- certificate store round trip ------------------------------------------


def test_certificate_store_roundtrip(tmp_path, base):
    path = str(tmp_path / "certs.jsonl")
    store = SolutionCertificateStore(path)
    store.put_payload(dict(base.certificate))
    store.flush()

    reloaded = SolutionCertificateStore(path)
    assert len(reloaded) == 1
    got = reloaded.get(base.cache_key)
    assert got is not None
    assert got["format"] == CERTIFICATE_FORMAT
    assert got["widths_digest"] == widths_digest(base.widths)


def test_widths_digest_stable_under_rounding():
    a = {"X": 1.2345678901234, "Y": 2.0}
    b = {"Y": 2.0, "X": 1.23456789008}  # same at 9 dp, different order
    assert widths_digest(a) == widths_digest(b)
    assert widths_digest(a) != widths_digest({"X": 1.23456790, "Y": 2.0})
