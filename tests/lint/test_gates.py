"""The two lint gates: the advisor's pre-sizing ERC gate and the sizing
engine's GP pre-solve gate."""

import pytest

from repro.core.advisor import SmartAdvisor
from repro.core.constraints import DesignConstraints
from repro.lint import Diagnostic, LintReport, Severity
from repro.macros.base import MacroBuilder, MacroSpec
from repro.sizing.engine import SizingError, SmartSizer


@pytest.fixture(scope="module")
def advisor():
    return SmartAdvisor()


def _mux4(advisor):
    return advisor.database.generate(
        "mux/strong_mutex_passgate", MacroSpec("mux", 4), advisor.tech
    )


class TestAdvisorLintGate:
    def test_clean_circuit_passes(self, advisor):
        assert advisor._lint_gate(_mux4(advisor)) is None

    def test_broken_circuit_blocks_with_reason(self, advisor):
        builder = MacroBuilder("bad", advisor.tech)
        builder.size("P"), builder.size("N")
        ghost = builder.wire("ghost")
        builder.inv("i0", ghost, builder.output("out"), "P", "N")
        reason = advisor._lint_gate(builder.done())
        assert reason is not None
        assert reason.startswith("lint failed: ")
        assert "ERC002" in reason


class TestEngineGPGate:
    def test_pre_solve_lint_clean_on_real_macro(self, advisor):
        circuit = _mux4(advisor)
        sizer = SmartSizer(circuit, advisor.library)
        spec = DesignConstraints(delay=150.0).to_delay_spec()
        report = sizer.pre_solve_lint(spec)
        assert report.subject == f"{circuit.name}:gp"
        assert report.ok

    def test_gp_lint_errors_fail_fast(self, advisor, monkeypatch):
        circuit = _mux4(advisor)
        sizer = SmartSizer(circuit, advisor.library)
        failing = LintReport(subject="gp")
        failing.add(Diagnostic("GP201", Severity.ERROR, "forged failure"))
        monkeypatch.setattr(sizer, "_lint_gp", lambda constraints: failing)
        spec = DesignConstraints(delay=150.0).to_delay_spec()
        with pytest.raises(SizingError, match="GP pre-solve lint failed"):
            sizer.size(spec)
