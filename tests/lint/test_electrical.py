"""NSA6xx electrical-safety certificates, mutant corpus, and facades."""

from repro.lint import lint_circuit
from repro.lint.electrical import (
    charge_share_certificates,
    keeper_certificates,
    noise_mutants,
    pass_chain_certificates,
    port_noise_margin,
    screen_electrical,
    worst_noise_margin,
)
from repro.lint.electrical.mutate import (
    coupled_victim,
    floating_internal_node,
    overlong_pass_chain,
    undersized_keeper,
)
from repro.lint.incremental import RuleResultCache, serialize_diagnostic
from repro.macros.base import MacroBuilder, MacroSpec
from repro.macros.registry import default_database
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()

NSA_RULES = ("NSA601", "NSA602", "NSA603", "NSA604")


def _nsa(report):
    return sorted({
        d.rule_id for d in report.diagnostics
        if d.rule_id.startswith("NSA6")
    })


def _electrical(circuit, **kwargs):
    return lint_circuit(circuit, groups=("electrical",), **kwargs)


class TestNoiseMutants:
    """Every seeded mutant fires exactly its intended rule."""

    def test_each_mutant_fires_only_its_rule(self):
        for label, circuit, expected in noise_mutants(TECH):
            fired = _nsa(_electrical(circuit))
            assert fired == [expected], (label, fired)

    def test_undersized_keeper_restore_margin(self):
        report = _electrical(undersized_keeper(TECH))
        [diag] = [d for d in report.diagnostics if d.rule_id == "NSA602"]
        assert "restore margin" in diag.message
        assert "keeper strength 0.01" in diag.message

    def test_overlong_chain_elmore_budget(self):
        report = _electrical(overlong_pass_chain(TECH))
        [diag] = [d for d in report.diagnostics if d.rule_id == "NSA603"]
        assert "Elmore delay" in diag.message
        assert "pg0>pg1>pg2>pg3>pg4" in diag.message
        assert "margin -" in diag.message

    def test_floating_node_is_box_provable_error(self):
        report = _electrical(floating_internal_node(TECH))
        [diag] = [d for d in report.diagnostics if d.rule_id == "NSA601"]
        assert str(diag.severity) == "error"
        assert "over the whole sizing box" in diag.message
        assert "witness OFF" in diag.message
        assert "exposed" in diag.message

    def test_coupled_victim_names_aggressor_and_margin(self):
        report = _electrical(coupled_victim(TECH))
        [diag] = [d for d in report.diagnostics if d.rule_id == "NSA604"]
        assert "coupling dip" in diag.message
        assert "attack" in diag.message
        assert "margin" in diag.message


class TestChargeShareCerts:
    def test_deep_stack_has_exposed_witness(self):
        certs = charge_share_certificates(floating_internal_node(TECH))
        [cert] = certs
        assert cert.violated and cert.provable
        assert len(cert.exposed) == 3  # 4-deep leg -> 3 internal nodes
        assert cert.witness_off  # the foot stays off in the worst state
        assert cert.dip_lo <= cert.dip <= cert.dip_hi

    def test_keeper_credits_the_budget(self):
        base = floating_internal_node(TECH)
        [plain] = charge_share_certificates(base)
        kept = floating_internal_node(TECH)
        next(
            s for s in kept.stages if s.name == "d0"
        ).params["keeper"] = 0.5
        [credited] = charge_share_certificates(kept)
        assert credited.allowed > plain.allowed
        assert credited.keeper == 0.5

    def test_one_deep_leg_exposes_nothing(self):
        assert charge_share_certificates(undersized_keeper(TECH)) == []

    def test_options_override_threshold(self):
        # A generous budget turns the provable violation into a pass.
        certs = charge_share_certificates(
            floating_internal_node(TECH),
            options={"electrical_charge_ratio": 0.9},
        )
        [cert] = certs
        assert not cert.violated


class TestKeeperAndPassCerts:
    def test_keeperless_stage_has_no_keeper_cert(self):
        assert keeper_certificates(floating_internal_node(TECH)) == []

    def test_restore_improves_with_stronger_keeper(self):
        weak_c = undersized_keeper(TECH)
        [weak] = keeper_certificates(weak_c)
        strong_c = undersized_keeper(TECH)
        next(
            s for s in strong_c.stages if s.name == "d0"
        ).params["keeper"] = 0.2
        [strong] = keeper_certificates(strong_c)
        assert strong.restore > weak.restore
        assert weak.restore_violated

    def test_chain_length_one_is_not_a_chain(self):
        assert pass_chain_certificates(overlong_pass_chain(TECH, 1)) == []

    def test_longer_chain_has_larger_elmore(self):
        [three] = pass_chain_certificates(overlong_pass_chain(TECH, 3))
        [five] = pass_chain_certificates(overlong_pass_chain(TECH, 5))
        assert five.tau > three.tau
        assert len(five.stages) == 5


class TestCleanCorpusSample:
    """A representative generator slice produces zero NSA *errors*."""

    def test_clean_sample_error_free(self):
        database = default_database()
        for macro, width in (("mux", 4), ("adder", 4), ("decoder", 3)):
            spec = MacroSpec(macro, width, output_load=20.0)
            for generator in database.applicable(spec):
                circuit = generator.generate(spec, TECH)
                report = _electrical(circuit)
                assert not report.errors, (generator.name, report.errors)


class TestIncrementalReplay:
    def test_warm_replay_is_byte_identical(self):
        cache = RuleResultCache()
        circuits = [c for _, c, _ in noise_mutants(TECH)]
        cold = [_electrical(c, cache=cache) for c in circuits]
        warm = [_electrical(c, cache=cache) for c in circuits]
        for c_rep, w_rep in zip(cold, warm):
            assert all(s == "replayed" for _, _, s in w_rep.executed)
            cold_ser = [serialize_diagnostic(d) for d in c_rep.diagnostics]
            warm_ser = [serialize_diagnostic(d) for d in w_rep.diagnostics]
            assert cold_ser == warm_ser


class TestScreen:
    def test_pinned_violator_is_provably_unsafe(self):
        screen = screen_electrical(floating_internal_node(TECH))
        assert screen.infeasible
        assert screen.verdict == "provably-unsafe"
        assert any("charge-sharing" in r for r in screen.reasons)

    def test_unpinned_violator_is_not_screened(self):
        # The same topology with a free sizing box cannot be condemned:
        # an upsized dynamic node could dilute the dip.
        builder = MacroBuilder("free_domino", TECH)
        clk = builder.clock()
        nets = [builder.input(f"a{i}") for i in range(4)]
        for label in ("PC", "D", "E"):
            builder.size(label)
        builder.domino(
            "d0", [[(net, PinClass.DATA) for net in nets]], clk,
            builder.output("out", load=4.0), "PC", "D", "E",
        )
        screen = screen_electrical(builder.done())
        assert not screen.infeasible

    def test_worst_margin_none_without_sensitive_nodes(self):
        builder = MacroBuilder("static_only", TECH)
        a = builder.input("a")
        out = builder.output("out", load=10.0)
        builder.size("P0"), builder.size("N0")
        builder.inv("i0", a, out, "P0", "N0")
        assert worst_noise_margin(builder.done()) is None

    def test_worst_margin_negative_on_violator(self):
        margin = worst_noise_margin(floating_internal_node(TECH))
        assert margin is not None and margin < 0


class TestPortNoiseMargin:
    def test_domino_input_exports_margin(self):
        circuit = undersized_keeper(TECH)
        margin = port_noise_margin(circuit, "a")
        assert margin is not None and 0 < margin < 1

    def test_static_input_exports_none(self):
        builder = MacroBuilder("static_only", TECH)
        a = builder.input("a")
        out = builder.output("out", load=10.0)
        builder.size("P0"), builder.size("N0")
        builder.inv("i0", a, out, "P0", "N0")
        assert port_noise_margin(builder.done(), "a") is None


class TestERC103Facade:
    """ERC103 keeps its trigger and message shape; margin rides along."""

    def _deep_domino(self, keeper=None):
        builder = MacroBuilder("legacy", TECH)
        clk = builder.clock()
        nets = [builder.input(f"a{i}") for i in range(3)]
        for label in ("PC", "D", "E"):
            builder.size(label)
        stage = builder.domino(
            "d0", [[(net, PinClass.DATA) for net in nets]], clk,
            builder.output("out", load=4.0), "PC", "D", "E",
        )
        if keeper is not None:
            stage.params["keeper"] = keeper
        return builder.done()

    def test_flagged_circuit_still_flagged_with_margin(self):
        report = lint_circuit(self._deep_domino())
        [diag] = [d for d in report.diagnostics if d.rule_id == "ERC103"]
        assert "evaluate stack depth 3 with no keeper" in diag.message
        assert "worst-case dip" in diag.message
        assert "margin" in diag.message

    def test_keeper_still_suppresses(self):
        report = lint_circuit(self._deep_domino(keeper=0.1))
        assert not [d for d in report.diagnostics if d.rule_id == "ERC103"]

    def test_facade_agrees_with_nsa601_quantity(self):
        circuit = self._deep_domino()
        [cert] = charge_share_certificates(circuit)
        report = lint_circuit(circuit)
        [diag] = [d for d in report.diagnostics if d.rule_id == "ERC103"]
        assert f"{cert.dip:.1%}" in diag.message


class TestContractNoiseFacts:
    def test_ports_carry_noise_facts(self):
        from repro.lint.contracts import derive_contract

        contract = derive_contract(undersized_keeper(TECH))
        in_port = contract["ports"]["a"]
        out_port = contract["ports"]["out"]
        assert 0 < in_port["noise_margin"] < 1
        assert 0 < out_port["noise_inject"] <= 1.0

    def test_ctr506_fires_on_coupled_boundary(self):
        from repro.lint.diagnostics import LintReport
        from repro.lint.hier import (
            HierBlock,
            HierConnection,
            HierInstance,
            _check_noise_budget,
        )

        driver = overlong_pass_chain(TECH, 2)
        victim = undersized_keeper(TECH)
        block = HierBlock(
            name="blk",
            instances=[
                HierInstance("u_drv", driver),
                HierInstance("u_dom", victim),
            ],
            connections=[HierConnection(
                net="n1",
                driver=("u_drv", "out"),
                sinks=(("u_dom", "a"),),
                wire_cap=500.0,
            )],
        )
        contracts = {
            "u_drv": {"ports": {
                "out": {"direction": "out", "noise_inject": 1.0},
            }},
            "u_dom": {"ports": {
                "a": {
                    "direction": "in",
                    "cap_lo": 1.0,
                    "noise_margin": 0.153,
                },
            }},
        }
        report = LintReport(subject="blk")
        violated = set()
        _check_noise_budget(block, contracts, report, violated)
        [diag] = [d for d in report.diagnostics if d.rule_id == "CTR506"]
        assert "boundary coupling dip" in diag.message
        assert ("u_dom", "a") in violated

    def test_ctr506_quiet_on_small_route(self):
        from repro.lint.diagnostics import LintReport
        from repro.lint.hier import (
            HierBlock,
            HierConnection,
            HierInstance,
            _check_noise_budget,
        )

        block = HierBlock(
            name="blk",
            instances=[],
            connections=[HierConnection(
                net="n1",
                driver=("u_drv", "out"),
                sinks=(("u_dom", "a"),),
                wire_cap=1.0,
            )],
        )
        contracts = {
            "u_drv": {"ports": {
                "out": {"direction": "out", "noise_inject": 1.0},
            }},
            "u_dom": {"ports": {
                "a": {
                    "direction": "in",
                    "cap_lo": 5.0,
                    "noise_margin": 0.153,
                },
            }},
        }
        report = LintReport(subject="blk")
        _check_noise_budget(block, contracts, report, set())
        assert not report.diagnostics


class TestAdvisorIntegration:
    def test_candidate_carries_noise_margin(self):
        from repro.core.advisor import SmartAdvisor
        from repro.core.constraints import DesignConstraints

        advisor = SmartAdvisor()
        report = advisor.advise(
            MacroSpec("mux", 4, output_load=20.0),
            DesignConstraints(delay=400.0),
            topologies=["mux/unsplit_domino"],
        )
        [cand] = report.candidates
        assert cand.feasible
        assert cand.noise_margin is not None
        rendered = report.render()
        assert "electrical margins (NSA6xx)" in rendered

    def test_electrical_prescreen_rejects_pinned_violator(self):
        from repro.core.advisor import SmartAdvisor
        from repro.core.constraints import DesignConstraints

        advisor = SmartAdvisor()
        reason = advisor._electrical_gate(
            floating_internal_node(TECH),
            DesignConstraints(delay=400.0, charge_sharing_ratio=0.15),
        )
        assert reason is not None and "charge-sharing" in reason

    def test_electrical_prescreen_off_without_ratio(self):
        from repro.core.advisor import SmartAdvisor
        from repro.core.constraints import DesignConstraints

        advisor = SmartAdvisor()
        assert advisor._electrical_gate(
            floating_internal_node(TECH), DesignConstraints(delay=400.0)
        ) is None
