"""Switch-level symbolic verification (SVC4xx) tests.

Three layers, mirroring the ERC test structure:

* hand-built broken micro-fixtures, one per rule (drive fight, floating
  output, sneak path) — each isolates its rule;
* the golden-equivalence contract: all six mux styles *prove* equal to the
  one golden mux spec, and every shipped generator carries a spec;
* a seeded-mutant corpus: one swapped select/data connection per macro
  family, each flagged by SVC401 or SVC402 — the end-to-end demonstration
  that the verifier catches real wiring errors.
"""

import pytest

from repro.lint import lint_circuit
from repro.lint.symbolic import extract, slice_certificate
from repro.lint.symbolic.mutate import rebind_pin, swap_pins
from repro.macros.base import MacroBuilder, MacroSpec
from repro.macros.mux import mux_golden_spec
from repro.macros.registry import default_database
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()
DATABASE = default_database()


def check(circuit, rule_id, **options):
    report = lint_circuit(
        circuit, groups=("symbolic",), only=[rule_id], options=options
    )
    return report.by_rule(rule_id)


def _generate(topology, macro, width, params=()):
    return DATABASE.generate(
        topology, MacroSpec(macro, width, params=params), TECH
    )


# ---------------------------------------------------------------------------
# broken micro-fixtures
# ---------------------------------------------------------------------------


class TestSVC402DriveFight:
    def test_opposing_tristate_drivers_flagged(self):
        builder = MacroBuilder("fight", TECH)
        a = builder.input("a")
        en = builder.input("en")
        ab = builder.wire("ab")
        merge = builder.wire("merge")
        out = builder.output("out")
        builder.size("P"), builder.size("N")
        builder.inv("i0", a, ab, "P", "N")
        # Both tri-states share one enable but carry complementary data:
        # en=1 shorts a pull-up against a pull-down on the merge net.
        builder.tristate("t0", a, en, merge, "P", "N")
        builder.tristate("t1", ab, en, merge, "P", "N")
        builder.inv("o0", merge, out, "P", "N")
        circuit = builder.circuit  # skip done(): the fixture is broken
        diags = check(circuit, "SVC402")
        assert diags, "opposing drivers must report a drive fight"
        assert any("merge" in (d.location.net or "") for d in diags)

    def test_clean_mux_has_no_fight(self):
        circuit = _generate("mux/strong_mutex_passgate", "mux", 4)
        assert check(circuit, "SVC402") == []


class TestSVC403Floating:
    def test_unselected_tristate_bus_flagged(self):
        builder = MacroBuilder("floaty", TECH)
        d = builder.input("d")
        en = builder.input("en")
        merge = builder.wire("merge")
        out = builder.output("out")
        builder.size("P"), builder.size("N")
        # One tri-state, no keeper, no complement branch: en=0 floats the
        # merge net and the output inverter reads stored charge.
        builder.tristate("t0", d, en, merge, "P", "N")
        builder.inv("o0", merge, out, "P", "N")
        circuit = builder.circuit
        diags = check(circuit, "SVC403")
        assert any("merge" in (d.location.net or "") for d in diags)

    def test_domino_precharge_nodes_exempt(self):
        """Domino dynamic nodes hold charge by design; the DFA301 phase
        facts exempt them from the floating report."""
        circuit = _generate("mux/unsplit_domino", "mux", 4)
        assert check(circuit, "SVC403") == []

    def test_weak_keeper_rescues_bus(self):
        circuit = _generate("mux/weak_mutex_passgate", "mux", 4)
        assert check(circuit, "SVC403") == []


class TestSVC404SneakPath:
    def test_bridge_between_drivers_flagged(self):
        builder = MacroBuilder("sneak", TECH)
        x, y = builder.input("x"), builder.input("y")
        s, t = builder.input("s"), builder.input("t")
        mx, my, mid = builder.wire("mx"), builder.wire("my"), builder.wire("mid")
        out = builder.output("out")
        builder.size("P"), builder.size("N"), builder.size("NP"), builder.size("NPI")
        builder.inv("ix", x, mx, "P", "N")
        builder.inv("iy", y, my, "P", "N")
        # Two pass gates meet at ``mid``: s=t=1 with x != y shorts the two
        # drivers through the pass network — a sneak path, not a plain
        # drive fight.
        builder.passgate("pgx", mx, s, mid, "NP", "NPI", mutex="encoded")
        builder.passgate("pgy", my, t, mid, "NP", "NPI", mutex="encoded")
        builder.inv("io", mid, out, "P", "N")
        circuit = builder.circuit
        diags = check(circuit, "SVC404")
        assert diags, "bridged pass gates must report a sneak path"
        # ... and the same conflicts must NOT double-report as drive fights.
        assert check(circuit, "SVC402") == []

    def test_strong_mutex_selects_have_no_sneak(self):
        circuit = _generate("mux/strong_mutex_passgate", "mux", 4)
        assert check(circuit, "SVC404") == []


# ---------------------------------------------------------------------------
# SVC401: golden functional equivalence
# ---------------------------------------------------------------------------


ONEHOT_STYLES_W4 = (
    "mux/strong_mutex_passgate",
    "mux/tristate",
    "mux/unsplit_domino",
    "mux/partitioned_domino",
)


class TestSVC401GoldenEquivalence:
    def test_all_six_mux_styles_prove_one_spec(self):
        """The tentpole claim: six transistor-level mux implementations —
        static pass, weak pass, tri-state, two domino forms, encoded 2:1 —
        all provably compute ``out = data[selected index]``.  The golden
        function is one; only the select *decode* differs per interface
        (one-hot, weak one-hot with a NOR'd last leg, encoded), so four
        styles share one spec object outright and all six carry the
        ``golden == "mux"`` family marker."""
        shared = mux_golden_spec(4, "onehot")
        for topology in ONEHOT_STYLES_W4:
            circuit = _generate(topology, "mux", 4)
            extraction = extract(circuit, shared)
            assert extraction.proved, (
                f"{topology}: verdict={extraction.verdict}, "
                f"mismatches={[m.witness() for m in extraction.mismatches[:3]]}"
            )
            assert circuit.functional_spec.golden == "mux"
        weak = _generate("mux/weak_mutex_passgate", "mux", 4)
        assert weak.functional_spec.golden == "mux"
        assert extract(weak, mux_golden_spec(4, "onehot_weak")).proved
        encoded = _generate("mux/encoded_select_2to1", "mux", 2)
        assert encoded.functional_spec.golden == "mux"
        assert extract(encoded, mux_golden_spec(2, "encoded")).proved

    def test_lint_reports_nothing_on_clean_mux(self):
        circuit = _generate("mux/tristate", "mux", 4)
        assert check(circuit, "SVC401") == []

    def test_spec_mismatch_carries_witness(self):
        circuit = _generate("mux/strong_mutex_passgate", "mux", 4)
        # Leg 0 now passes leg 1's data: s0=1 cleanly routes in1, a defined
        # wrong value (a select rebind would merely float the bus instead).
        rebind_pin(circuit, "pass0", "d", "mid1")
        diags = check(circuit, "SVC401")
        assert diags
        assert "golden spec (mux)" in diags[0].message
        assert "s0=1" in diags[0].message  # the witness assignment

    def test_rule_skipped_without_spec(self):
        builder = MacroBuilder("nospec", TECH)
        a = builder.input("a")
        out = builder.output("out")
        builder.size("P"), builder.size("N")
        builder.inv("i0", a, out, "P", "N")
        assert check(builder.done(), "SVC401") == []

    def test_every_registered_generator_has_a_spec(self):
        """No shipped topology may opt out of symbolic verification."""
        missing = []
        for generator in DATABASE.topologies():
            width = 32 if generator.macro_type == "comparator" else 4
            if generator.macro_type == "adder" and "cla" in generator.name:
                width = 16
            spec = MacroSpec(generator.macro_type, width)
            if not generator.applicable(spec):
                width = next(
                    w for w in range(1, 129)
                    if generator.applicable(
                        MacroSpec(generator.macro_type, w)
                    )
                )
                spec = MacroSpec(generator.macro_type, width)
            if generator.functional_spec(spec) is None:
                missing.append(generator.name)
        assert missing == []


# ---------------------------------------------------------------------------
# seeded mutants: one swapped connection per macro family
# ---------------------------------------------------------------------------

# (family label, topology, macro, width, params, mutation)
# Each mutation swaps or rewires exactly one select/data connection.
MUTANTS = [
    ("mux", "mux/strong_mutex_passgate", "mux", 4, (),
     lambda c: rebind_pin(c, "pass0", "s", "s1")),
    ("mux-domino", "mux/unsplit_domino", "mux", 4, (),
     # Cross-leg swap: in-leg swaps are AND-commutative no-ops.
     lambda c: swap_pins(c, "dom", "l0s1", "l1s1")),
    ("adder", "adder/static_ripple", "adder", 4, (),
     lambda c: rebind_pin(c, "hx0", "in1", "a0")),
    ("incrementor", "incrementor/ripple", "incrementor", 4, (),
     lambda c: rebind_pin(c, "cnand0", "in1", "a0")),
    ("decrementor", "decrementor/ripple", "decrementor", 4, (),
     lambda c: rebind_pin(c, "cnand0", "in1", "ab0")),
    ("zero_detect", "zero_detect/static_tree", "zero_detect", 4, (),
     lambda c: rebind_pin(c, "lgate0_0", "in3", "a0")),
    ("decoder", "decoder/flat_static", "decoder", 3, (),
     lambda c: rebind_pin(c, "mnand1", "in0", "ab0")),
    ("encoder", "encoder/static_tree", "encoder", 3, (),
     lambda c: rebind_pin(c, "b0gate0_0", "in0", "i0")),
    ("comparator", "comparator/xorsum2", "comparator", 32, (),
     lambda c: rebind_pin(c, "outgate", "in0", "paireq0")),
    ("shifter", "shifter/passgate_barrel", "shifter", 4, (),
     lambda c: rebind_pin(c, "r0rot0", "s", "shb0")),
    ("register_file", "register_file/tristate_bitline", "register_file", 2,
     (("registers", 4),),
     lambda c: rebind_pin(c, "bit0reg0", "en", "o1")),
]


class TestSeededMutants:
    @pytest.mark.parametrize(
        "family,topology,macro,width,params,mutate",
        MUTANTS, ids=[m[0] for m in MUTANTS],
    )
    def test_mutant_flagged(self, family, topology, macro, width, params, mutate):
        circuit = _generate(topology, macro, width, params)
        baseline = lint_circuit(
            circuit, groups=("symbolic",),
            options={"symbolic_samples": 32},
        )
        assert baseline.errors == [], (
            f"{topology}: clean build must verify before mutation: "
            + "; ".join(d.format() for d in baseline.errors)
        )
        mutate(circuit)
        report = lint_circuit(
            circuit, groups=("symbolic",),
            options={"symbolic_samples": 32},
        )
        flagged = {
            d.rule_id for d in report.errors
        } & {"SVC401", "SVC402"}
        assert flagged, (
            f"{family}: mutant not caught "
            f"(errors: {[d.format() for d in report.errors]})"
        )


# ---------------------------------------------------------------------------
# clean corpus: SVC402/SVC403 silence on everything shipped
# ---------------------------------------------------------------------------


CLEAN_CORPUS = [
    ("mux/strong_mutex_passgate", "mux", 4, ()),
    ("mux/weak_mutex_passgate", "mux", 4, ()),
    ("mux/encoded_select_2to1", "mux", 2, ()),
    ("mux/tristate", "mux", 8, ()),
    ("mux/unsplit_domino", "mux", 4, ()),
    ("mux/partitioned_domino", "mux", 8, ()),
    ("adder/static_ripple", "adder", 8, ()),
    ("adder/dual_rail_domino_cla", "adder", 16, ()),
    ("comparator/xorsum2", "comparator", 32, ()),
    ("comparator/xorsum1", "comparator", 32, ()),
    ("comparator/xorsum4", "comparator", 32, ()),
    ("incrementor/prefix", "incrementor", 8, ()),
    ("decrementor/prefix", "decrementor", 8, ()),
    ("zero_detect/split_domino", "zero_detect", 16, ()),
    ("decoder/predecoded", "decoder", 5, ()),
    ("encoder/domino", "encoder", 3, ()),
    ("shifter/passgate_barrel", "shifter", 8, ()),
    ("shifter/tristate_barrel", "shifter", 8, ()),
    ("register_file/domino_bitline", "register_file", 2, (("registers", 4),)),
]


class TestCleanCorpus:
    @pytest.mark.parametrize(
        "topology,macro,width,params",
        CLEAN_CORPUS, ids=[f"{c[0]}-{c[2]}" for c in CLEAN_CORPUS],
    )
    def test_no_fights_or_floaters(self, topology, macro, width, params):
        circuit = _generate(topology, macro, width, params)
        report = lint_circuit(
            circuit, groups=("symbolic",),
            only=["SVC402", "SVC403", "SVC404"],
            options={"symbolic_samples": 16},
        )
        assert report.errors == [], "; ".join(
            d.format() for d in report.errors
        )

    def test_shifter_width8_proves_with_raised_budget(self):
        """Width 8 has 11 inputs — above the default exact budget it is
        only sampled; raising the budget upgrades the verdict to proved."""
        circuit = _generate("shifter/passgate_barrel", "shifter", 8)
        sampled = extract(circuit, circuit.functional_spec, samples=16)
        assert sampled.verdict == "tested" and not sampled.mismatches
        proved = extract(circuit, circuit.functional_spec, exact_budget=11)
        assert proved.proved
        assert proved.n_assignments == 2 ** 11


# ---------------------------------------------------------------------------
# SVC405: slice-isomorphism certificates
# ---------------------------------------------------------------------------


class TestSVC405SliceIsomorphism:
    def test_certificate_on_regular_read_port(self):
        circuit = _generate(
            "register_file/tristate_bitline", "register_file", 2,
            (("registers", 4),),
        )
        certificate = slice_certificate(circuit)
        assert certificate.certifies("q0", "q1")
        assert certificate.violations == ()

    def test_certificate_backs_regularity_merging(self):
        """The consumption contract: when the certificate marks two output
        slices isomorphic, their extracted timing paths have identical
        signature multisets, so the Section-5.2 merge over them is sound."""
        from collections import Counter

        from repro.sizing.paths import PathExtractor
        from repro.sizing.pruning import path_signature

        circuit = _generate(
            "register_file/tristate_bitline", "register_file", 2,
            (("registers", 4),),
        )
        certificate = slice_certificate(circuit)
        merged = [g for g in certificate.groups if g.isomorphic]
        assert merged, "read port slices must certify as isomorphic"

        paths = PathExtractor(circuit).extract()
        by_output = {}
        for path in paths:
            by_output.setdefault(path.end_net, []).append(
                path_signature(circuit, path)
            )
        for group in merged:
            reference = Counter(by_output.get(group.outputs[0], []))
            for output in group.outputs[1:]:
                assert Counter(by_output.get(output, [])) == reference, (
                    f"certified-isomorphic slices {group.outputs[0]} and "
                    f"{output} disagree on path signatures"
                )

    def test_broken_regularity_warned(self):
        """Rewiring one slice breaks the certificate and raises SVC405."""
        circuit = _generate(
            "register_file/tristate_bitline", "register_file", 2,
            (("registers", 4),),
        )
        # Bit 0 / register 0's enable now comes straight from a data input
        # instead of the decoder: the q0 cone loses its decoder sub-cone
        # while the size labels stay shared with q1.
        rebind_pin(circuit, "bit0reg0", "en", "d2_0")
        certificate = slice_certificate(circuit)
        assert not certificate.certifies("q0", "q1")

    def test_mux_slices_via_lint(self):
        circuit = _generate("mux/strong_mutex_passgate", "mux", 4)
        assert check(circuit, "SVC405") == []


# ---------------------------------------------------------------------------
# fingerprint: rename/reorder invariance, mutant sensitivity
# ---------------------------------------------------------------------------


class TestFingerprintCanonicalization:
    def _chain(self, name, net_names, reverse_build=False):
        """in -> [inv] -> w1 -> [inv] -> out with configurable wire names
        and stage insertion order."""
        builder = MacroBuilder(name, TECH)
        a = builder.input("in")
        w = builder.wire(net_names[0])
        out = builder.output("out")
        builder.size("P0"), builder.size("N0")
        builder.size("P1"), builder.size("N1")
        stages = [
            ("i0", a, w, "P0", "N0"),
            ("i1", w, out, "P1", "N1"),
        ]
        if reverse_build:
            # Nets exist up front, so stages can be added back-to-front.
            stages = list(reversed(stages))
        for stage_name, src, dst, pu, pd in stages:
            builder.inv(stage_name, src, dst, pu, pd)
        return builder.done()

    def test_invariant_under_internal_rename(self):
        from repro.netlist.fingerprint import circuit_fingerprint

        f1 = circuit_fingerprint(self._chain("c1", ["mid"]))
        f2 = circuit_fingerprint(self._chain("c2", ["zz_renamed"]))
        assert f1 == f2

    def test_invariant_under_stage_reorder(self):
        from repro.netlist.fingerprint import circuit_fingerprint

        f1 = circuit_fingerprint(self._chain("c1", ["mid"]))
        f2 = circuit_fingerprint(self._chain("c2", ["mid"], reverse_build=True))
        assert f1 == f2

    def test_functional_mutant_changes_fingerprint(self):
        """The mutant SVC401 catches must also miss the sizing cache."""
        from repro.netlist.fingerprint import circuit_fingerprint

        clean = _generate("mux/strong_mutex_passgate", "mux", 4)
        mutant = _generate("mux/strong_mutex_passgate", "mux", 4)
        rebind_pin(mutant, "pass0", "s", "s1")
        assert check(mutant, "SVC401"), "mutant must be SVC401-detectable"
        assert circuit_fingerprint(clean) != circuit_fingerprint(mutant)

    def test_generated_macros_stable(self):
        from repro.netlist.fingerprint import circuit_fingerprint

        a = _generate("mux/tristate", "mux", 4)
        b = _generate("mux/tristate", "mux", 4)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
