"""DFA302 whole-circuit monotonicity + the ERC101 primary-input fix.

Includes the regression contract for this PR: a falling/async primary input
reaching a domino evaluate network used to slip past ERC101's cone walk
(primary inputs were "out of scope"); it is now caught both locally (via
declared pin phases) and globally (DFA302), while an undeclared input keeps
the historical benefit of the doubt.
"""

from repro.lint import lint_circuit
from repro.lint.dataflow.monotone import Mono, solve_monotonicity
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()


def _builder(name="fixture"):
    builder = MacroBuilder(name, TECH)
    for label in ("P", "N", "PC", "D", "E", "PP", "SI"):
        builder.size(label)
    return builder


def check(circuit, rule_id):
    return lint_circuit(circuit, only=[rule_id]).by_rule(rule_id)


def _domino(builder, name, in_net, out_net, clocked=True):
    return builder.domino(
        name,
        [[(in_net, PinClass.DATA)]],
        builder.circuit.net("clk"),
        out_net,
        "PC",
        "D",
        "E" if clocked else None,
    )


class TestLattice:
    def test_declared_sources(self):
        builder = _builder()
        builder.clock()
        builder.input("r", phase="mono_rise")
        builder.input("f", phase="mono_fall")
        builder.input("s", phase="steady")
        builder.input("x", phase="async")
        builder.input("u")
        result = solve_monotonicity(builder.done())
        assert result.value("r") is Mono.RISING
        assert result.value("f") is Mono.FALLING
        assert result.value("s") is Mono.STEADY
        assert result.value("x") is Mono.NONMONO
        assert result.value("u") is Mono.STEADY
        assert result.value("clk") is Mono.CLOCK

    def test_static_gates_invert(self):
        builder = _builder()
        builder.clock()
        r = builder.input("r", phase="mono_rise")
        n1, n2 = builder.wire("n1"), builder.wire("n2")
        builder.inv("i0", r, n1, "P", "N")
        builder.inv("i1", n1, n2, "P", "N")
        result = solve_monotonicity(builder.done())
        assert result.value("n1") is Mono.FALLING
        assert result.value("n2") is Mono.RISING

    def test_steady_is_transparent_in_joins(self):
        builder = _builder()
        builder.clock()
        r = builder.input("r", phase="mono_rise")
        s = builder.input("s", phase="steady")
        builder.nand("g", [r, s], builder.wire("n"), "P", "N")
        result = solve_monotonicity(builder.done())
        assert result.value("n") is Mono.FALLING

    def test_mixed_edges_are_nonmonotone(self):
        builder = _builder()
        builder.clock()
        r = builder.input("r", phase="mono_rise")
        f = builder.input("f", phase="mono_fall")
        builder.nand("g", [r, f], builder.wire("n"), "P", "N")
        result = solve_monotonicity(builder.done())
        assert result.value("n") is Mono.NONMONO

    def test_xor_of_moving_input_is_nonmonotone(self):
        builder = _builder()
        builder.clock()
        r = builder.input("r", phase="mono_rise")
        s = builder.input("s", phase="steady")
        builder.xor("x", r, s, builder.wire("n"), "P", "N")
        result = solve_monotonicity(builder.done())
        assert result.value("n") is Mono.NONMONO

    def test_domino_rail_through_odd_inversions_is_rising(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        dyn, buf = builder.wire("dyn"), builder.wire("buf")
        _domino(builder, "d0", a, dyn)
        builder.inv("b0", dyn, buf, "P", "N")
        result = solve_monotonicity(builder.done())
        assert result.value("dyn") is Mono.FALLING
        assert result.value("buf") is Mono.RISING


class TestSelectSmuggling:
    """The seeded whole-circuit violation ERC101's cone walk cannot see:
    the non-monotone signal arrives through a pass-gate *select*, and the
    data cone itself is spotless."""

    def _fixture(self):
        builder = _builder()
        builder.clock()
        quiet = builder.input("quiet", phase="steady")
        glitchy = builder.input("glitchy", phase="async")
        steered = builder.wire("steered")
        builder.passgate("pg", quiet, glitchy, steered, "PP", "SI")
        _domino(builder, "d0", steered, builder.output("out"))
        return builder.done()

    def test_dataflow_catches_it(self):
        diags = check(self._fixture(), "DFA302")
        assert any(
            "non-monotone" in d.message and d.location.stage == "d0"
            for d in diags
        )

    def test_local_cone_walk_misses_it(self):
        assert not check(self._fixture(), "ERC101")


class TestERC101PrimaryInputRegression:
    """Satellite fix: ERC101 used to skip cones rooting at primary inputs
    outright; declared pin phases close the blind spot."""

    def _falling_reach(self, phase, inversions):
        builder = _builder()
        builder.clock()
        net = builder.input("a", phase=phase)
        for i in range(inversions):
            nxt = builder.wire(f"n{i}")
            builder.inv(f"i{i}", net, nxt, "P", "N")
            net = nxt
        _domino(builder, "d0", net, builder.output("out"))
        return builder.done()

    def test_mono_fall_even_parity_now_caught(self):
        """The previously-missed violation: a declared-falling input reaches
        the evaluate network through an even number of inversions (zero
        here), so it falls during evaluate — and the old rule said nothing.
        """
        diags = check(self._falling_reach("mono_fall", 0), "ERC101")
        assert len(diags) == 1
        assert "declared mono_fall" in diags[0].message
        # DFA302 agrees from the whole-circuit side.
        assert check(self._falling_reach("mono_fall", 0), "DFA302")

    def test_mono_rise_odd_parity_now_caught(self):
        diags = check(self._falling_reach("mono_rise", 1), "ERC101")
        assert len(diags) == 1
        assert "falls during evaluate" in diags[0].message

    def test_async_input_now_caught(self):
        diags = check(self._falling_reach("async", 0), "ERC101")
        assert len(diags) == 1
        assert "async" in diags[0].message

    def test_correct_polarities_are_clean(self):
        assert not check(self._falling_reach("mono_rise", 0), "ERC101")
        assert not check(self._falling_reach("mono_fall", 1), "ERC101")
        assert not check(self._falling_reach("steady", 0), "ERC101")

    def test_undeclared_input_keeps_historical_benefit_of_doubt(self):
        assert not check(self._falling_reach(None, 0), "ERC101")
        assert not check(self._falling_reach(None, 1), "ERC101")


class TestDFA302DominoChecks:
    def test_falling_pi_many_stages_away(self):
        """Declared falling input laundered through two static ranks — far
        beyond what a local parity walk tracks once other inputs join."""
        builder = _builder()
        builder.clock()
        f = builder.input("f", phase="mono_fall")
        s = builder.input("s", phase="steady")
        n1, n2 = builder.wire("n1"), builder.wire("n2")
        builder.nand("g0", [f, s], n1, "P", "N")     # rising
        builder.inv("g1", n1, n2, "P", "N")           # falling again
        _domino(builder, "d0", n2, builder.output("out"))
        diags = check(builder.done(), "DFA302")
        assert any("monotone-falling" in d.message for d in diags)

    def test_clean_domino_pipeline_has_no_findings(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a", phase="mono_rise")
        dyn, buf = builder.wire("dyn"), builder.wire("buf")
        _domino(builder, "d0", a, dyn)
        builder.inv("b0", dyn, buf, "P", "N")
        _domino(builder, "d1", buf, builder.output("out"))
        assert not check(builder.done(), "DFA302")

    def test_clock_valued_data_pin_not_flagged_here(self):
        """A clock on a data pin is ERC106/DFA301 territory; DFA302 stays
        quiet to avoid triple-reporting."""
        builder = _builder()
        clk = builder.clock()
        clkb = builder.wire("clkb")
        builder.inv("ci", clk, clkb, "P", "N")
        _domino(builder, "d0", clkb, builder.output("out"))
        diags = check(builder.done(), "DFA302")
        assert not diags
