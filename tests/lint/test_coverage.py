"""Pruning-certificate verification (CST101–CST103).

Each test prunes a real macro with ``certify=True``, confirms the clean
certificate verifies, then tampers with one claim and checks the verifier
catches exactly that lie.
"""

import dataclasses

import pytest

from repro.core.advisor import SmartAdvisor
from repro.lint.coverage import verify_pruning
from repro.macros.base import MacroSpec
from repro.sizing.paths import PathExtractor
from repro.sizing.pruning import path_signature, prune_paths


@pytest.fixture(scope="module")
def advisor():
    return SmartAdvisor()


def _certified(advisor, topology, macro_type, width):
    circuit = advisor.database.generate(
        topology, MacroSpec(macro_type, width), advisor.tech
    )
    raw = PathExtractor(circuit).extract()
    result = prune_paths(circuit, raw, certify=True)
    assert result.certificate is not None
    return circuit, raw, result.certificate


class TestCleanCertificates:
    @pytest.mark.parametrize(
        "topology, macro_type, width",
        [
            ("zero_detect/static_tree", "zero_detect", 15),  # precedence
            ("zero_detect/domino", "zero_detect", 8),  # regularity
            ("mux/strong_mutex_passgate", "mux", 8),  # dominance
            ("adder/dual_rail_domino_cla", "adder", 16),  # all three
        ],
    )
    def test_verifies_ok(self, advisor, topology, macro_type, width):
        circuit, raw, cert = _certified(advisor, topology, macro_type, width)
        report = verify_pruning(circuit, raw, cert)
        assert report.ok, [d.format() for d in report.errors[:5]]
        assert report.subject == f"{circuit.name}:pruning"

    def test_certificate_accounts_for_every_path(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "adder/dual_rail_domino_cla", "adder", 16
        )
        assert set(cert.surviving).isdisjoint(cert.dropped)
        assert len(cert.surviving) + len(cert.dropped) == len(set(raw))

    def test_uncertified_run_has_no_certificate(self, advisor):
        circuit = advisor.database.generate(
            "mux/strong_mutex_passgate", MacroSpec("mux", 4), advisor.tech
        )
        raw = PathExtractor(circuit).extract()
        assert prune_paths(circuit, raw).certificate is None


class TestCST101UncoveredPath:
    def test_deleted_witness_is_caught(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "mux/strong_mutex_passgate", "mux", 8
        )
        victim = next(iter(cert.dropped))
        del cert.dropped[victim]
        report = verify_pruning(circuit, raw, cert)
        diags = report.by_rule("CST101")
        assert len(diags) == 1
        assert "neither surviving nor witnessed" in diags[0].message
        assert not report.ok


class TestCST102InvalidWitness:
    def test_forged_precedence_pin(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "zero_detect/static_tree", "zero_detect", 15
        )
        victim, witness = next(
            (p, w) for p, w in cert.dropped.items()
            if w.reason == "precedence"
        )
        cert.dropped[victim] = dataclasses.replace(witness, pin="zz_bogus")
        report = verify_pruning(circuit, raw, cert)
        diags = report.by_rule("CST102")
        assert len(diags) == 1
        assert "does not justify dropping" in diags[0].message

    def test_merge_witness_without_survivor(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "zero_detect/domino", "zero_detect", 8
        )
        victim, witness = next(
            (p, w) for p, w in cert.dropped.items()
            if w.reason == "regularity"
        )
        cert.dropped[victim] = dataclasses.replace(witness, survivor=None)
        report = verify_pruning(circuit, raw, cert)
        assert "names no surviving path" in report.by_rule("CST102")[0].message

    def test_merge_witness_with_wrong_signature(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "zero_detect/domino", "zero_detect", 8
        )
        victim, witness = next(
            (p, w) for p, w in cert.dropped.items()
            if w.reason == "regularity"
        )
        # Point the witness at a *surviving* path of a different signature.
        impostor = next(
            s for s in cert.surviving
            if path_signature(circuit, s) != path_signature(circuit, victim)
        )
        cert.dropped[victim] = dataclasses.replace(witness, survivor=impostor)
        report = verify_pruning(circuit, raw, cert)
        diags = report.by_rule("CST102")
        assert len(diags) == 1
        assert "different path signature" in diags[0].message


class TestCST103InvalidDominance:
    def test_claimed_stage_outside_group(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "mux/strong_mutex_passgate", "mux", 8
        )
        assert cert.dominant  # dominance pass ran
        key = next(iter(cert.dominant))
        cert.dominant[key] = "no_such_stage"
        report = verify_pruning(circuit, raw, cert)
        diags = report.by_rule("CST103")
        assert len(diags) == 1
        assert "not in the claimed regularity group" in diags[0].message

    def test_non_maximal_fanout_claim(self, advisor):
        # incrementor/ripple's carry-inverter group mixes fanout-2 stages
        # with the fanout-0 coutinv; claiming coutinv dominant is a lie the
        # recount must catch.
        circuit, raw, cert = _certified(
            advisor, "incrementor/ripple", "incrementor", 8
        )
        key = next(
            k for k, name in cert.dominant.items() if name.startswith("cinv")
        )
        cert.dominant[key] = "coutinv"
        report = verify_pruning(circuit, raw, cert)
        diags = report.by_rule("CST103")
        assert len(diags) == 1
        assert "claimed dominant with fanout 0" in diags[0].message

    def test_finding_cap_suppresses_flood(self, advisor):
        circuit, raw, cert = _certified(
            advisor, "mux/strong_mutex_passgate", "mux", 8
        )
        # Drop every witness: 14 uncovered paths against a cap of 5.
        cert.dropped.clear()
        report = verify_pruning(circuit, raw, cert, max_findings=5)
        diags = report.by_rule("CST101")
        assert len(diags) == 6  # 5 findings + 1 suppression summary
        assert "9 more CST101 finding(s) suppressed" in diags[-1].message
