"""Unit tests for the generic forward worklist solver."""

from repro.lint.dataflow import ForwardAnalysis, solve_forward
from repro.lint.dataflow.framework import WIDEN_AFTER
from repro.macros.base import MacroBuilder
from repro.models import Technology

TECH = Technology()


class DepthAnalysis(ForwardAnalysis):
    """Longest stage distance from any source (-1 = unreached).

    Deliberately has an infinite ascending chain so cyclic circuits *must*
    widen for the solver to terminate.
    """

    name = "depth"

    def bottom(self):
        return -1

    def source_value(self, circuit, net_name):
        return 0

    def transfer(self, circuit, stage, inputs):
        reached = [v for v in inputs.values() if v >= 0]
        if not reached:
            return -1
        return 1 + max(reached)

    def join(self, a, b):
        return max(a, b)

    def widen(self, old, new):
        return 10_000


def _builder(name="dfa"):
    builder = MacroBuilder(name, TECH)
    for label in ("P", "N"):
        builder.size(label)
    return builder


class TestAcyclicFixpoint:
    def test_chain_depths(self):
        builder = _builder()
        a = builder.input("a")
        n1, n2 = builder.wire("n1"), builder.wire("n2")
        builder.inv("i0", a, n1, "P", "N")
        builder.inv("i1", n1, n2, "P", "N")
        builder.inv("i2", n2, builder.output("out"), "P", "N")
        result = solve_forward(builder.done(), DepthAnalysis())
        assert result.value("a") == 0
        assert result.value("n1") == 1
        assert result.value("n2") == 2
        assert result.value("out") == 3
        assert result.widened == ()

    def test_multidriver_net_joins_contributions(self):
        builder = _builder()
        a, b = builder.input("a"), builder.input("b")
        en0, en1 = builder.input("en0"), builder.input("en1")
        n1 = builder.wire("n1")
        bus = builder.wire("bus")
        builder.inv("i0", a, n1, "P", "N")
        builder.tristate("t0", n1, en0, bus, "P", "N")  # depth 2 contribution
        builder.tristate("t1", b, en1, bus, "P", "N")   # depth 1 contribution
        builder.inv("i3", bus, builder.output("out"), "P", "N")
        result = solve_forward(builder.done(), DepthAnalysis())
        assert result.value("bus") == 2       # join = max of both drivers
        assert result.value("out") == 3

    def test_reconvergent_fanout_takes_longest_side(self):
        builder = _builder()
        a = builder.input("a")
        s1, l1, l2 = builder.wire("s1"), builder.wire("l1"), builder.wire("l2")
        merge = builder.wire("merge")
        builder.inv("short", a, s1, "P", "N")
        builder.inv("long0", a, l1, "P", "N")
        builder.inv("long1", l1, l2, "P", "N")
        builder.nand("m", [s1, l2], merge, "P", "N")
        result = solve_forward(builder.done(), DepthAnalysis())
        assert result.value("merge") == 3
        assert result.visits >= 4

    def test_undriven_net_stays_bottom(self):
        builder = _builder()
        a = builder.input("a")
        builder.wire("floating")
        builder.inv("i0", a, builder.output("out"), "P", "N")
        result = solve_forward(builder.done(), DepthAnalysis())
        assert result.value("floating") == -1


class TestCyclicWidening:
    def _loop(self):
        """a NAND whose output feeds itself through an inverter — the
        worst-case subject: a genuine combinational loop."""
        builder = _builder()
        a = builder.input("a")
        x, fb = builder.wire("x"), builder.wire("fb")
        builder.nand("g", [a, fb], x, "P", "N")
        builder.inv("i", x, fb, "P", "N")
        return builder.done()

    def test_loop_terminates_and_widens(self):
        result = solve_forward(self._loop(), DepthAnalysis())
        assert set(result.widened) == {"x", "fb"}
        assert result.value("x") == 10_000
        assert result.value("fb") == 10_000
        # Termination within the widening budget, not by luck.
        assert result.visits < 10 * (WIDEN_AFTER + 2)

    def test_acyclic_never_widens_even_when_deep(self):
        builder = _builder()
        net = builder.input("a")
        for i in range(3 * WIDEN_AFTER):
            nxt = builder.wire(f"n{i}")
            builder.inv(f"i{i}", net, nxt, "P", "N")
            net = nxt
        result = solve_forward(builder.done(), DepthAnalysis())
        assert result.widened == ()
        assert result.value(f"n{3 * WIDEN_AFTER - 1}") == 3 * WIDEN_AFTER


class TestDeterminism:
    def test_same_circuit_same_result(self):
        def run():
            builder = _builder()
            a, b = builder.input("a"), builder.input("b")
            n = builder.wire("n")
            builder.nand("g0", [a, b], n, "P", "N")
            builder.inv("g1", n, builder.output("out"), "P", "N")
            return solve_forward(builder.done(), DepthAnalysis())

        first, second = run(), run()
        assert first.values == second.values
        assert first.visits == second.visits
