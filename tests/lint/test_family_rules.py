"""One positive and one negative test per family rule ``ERC101``–``ERC107``.

Fixtures are deliberately-broken micro-circuits; each test isolates its rule
with ``only=`` so unrelated hygiene findings don't leak in.
"""

from repro.lint import Severity, lint_circuit
from repro.lint.rules_family import CHARGE_SHARE_DEPTH, MAX_PASS_CHAIN
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()


def _builder(name="fixture"):
    builder = MacroBuilder(name, TECH)
    for label in ("P", "N", "PC", "D", "E", "PP", "SI"):
        builder.size(label)
    return builder


def check(circuit, rule_id):
    return lint_circuit(circuit, only=[rule_id]).by_rule(rule_id)


def _domino(builder, name, in_net, out_net, clocked=True):
    return builder.domino(
        name,
        [[(in_net, PinClass.DATA)]],
        builder.circuit.net("clk"),
        out_net,
        "PC",
        "D",
        "E" if clocked else None,
    )


class TestERC101Monotonicity:
    def test_even_parity_is_flagged(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        dyn0, n1, n2 = builder.wire("dyn0"), builder.wire("n1"), builder.wire("n2")
        _domino(builder, "d0", a, dyn0)
        builder.inv("b0", dyn0, n1, "P", "N")
        builder.inv("b1", n1, n2, "P", "N")
        _domino(builder, "d1", n2, builder.output("out"))
        diags = check(builder.done(), "ERC101")
        assert len(diags) == 1
        assert "even parity" in diags[0].message
        assert diags[0].location.stage == "d1"

    def test_xor_in_cone_is_flagged(self):
        builder = _builder()
        builder.clock()
        a, b = builder.input("a"), builder.input("b")
        n = builder.wire("n")
        builder.xor("x0", a, b, n, "P", "N")
        _domino(builder, "d0", n, builder.output("out"))
        diags = check(builder.done(), "ERC101")
        assert len(diags) == 1
        assert "non-monotone XOR stage x0" in diags[0].message

    def test_odd_parity_is_clean(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        dyn0, buf = builder.wire("dyn0"), builder.wire("buf")
        _domino(builder, "d0", a, dyn0)
        builder.inv("b0", dyn0, buf, "P", "N")
        _domino(builder, "d1", buf, builder.output("out"))
        assert not check(builder.done(), "ERC101")


class TestERC102D2Precharge:
    def test_d2_fed_from_primary_input(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        _domino(builder, "d2", a, builder.output("out"), clocked=False)
        diags = check(builder.done(), "ERC102")
        assert len(diags) == 1
        assert "footless (D2)" in diags[0].message
        assert "roots at a" in diags[0].message

    def test_d2_fed_from_buffered_domino_is_clean(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        dyn0, buf = builder.wire("dyn0"), builder.wire("buf")
        _domino(builder, "d1", a, dyn0)
        builder.inv("b0", dyn0, buf, "P", "N")
        _domino(builder, "d2", buf, builder.output("out"), clocked=False)
        assert not check(builder.done(), "ERC102")


class TestERC103ChargeSharing:
    def _deep_stack(self, keeper):
        builder = _builder()
        clk = builder.clock()
        nets = [builder.input(f"a{i}") for i in range(CHARGE_SHARE_DEPTH)]
        stage = builder.domino(
            "d0",
            [[(net, PinClass.DATA) for net in nets]],
            clk,
            builder.output("out"),
            "PC",
            "D",
            "E",
        )
        if keeper:
            stage.params["keeper"] = True
        return builder.done()

    def test_deep_unkept_stack_warns(self):
        diags = check(self._deep_stack(keeper=False), "ERC103")
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING
        assert f"depth {CHARGE_SHARE_DEPTH}" in diags[0].message

    def test_keeper_suppresses(self):
        assert not check(self._deep_stack(keeper=True), "ERC103")

    def test_aggregates_per_shape(self):
        builder = _builder()
        clk = builder.clock()
        for col in range(4):
            nets = [
                builder.input(f"a{col}_{i}")
                for i in range(CHARGE_SHARE_DEPTH)
            ]
            builder.domino(
                f"d{col}",
                [[(net, PinClass.DATA) for net in nets]],
                clk,
                builder.output(f"out{col}"),
                "PC",
                "D",
                "E",
            )
        diags = check(builder.done(), "ERC103")
        assert len(diags) == 1  # one finding for the whole regular column
        assert "4 stages like d0" in diags[0].message


class TestERC104PassChain:
    def _chain(self, length):
        builder = _builder()
        nets = [builder.input("d0")]
        for i in range(1, length):
            nets.append(builder.wire(f"n{i}"))
        nets.append(builder.output("out"))
        for i in range(length):
            sel = builder.input(f"s{i}")
            builder.passgate(f"p{i}", nets[i], sel, nets[i + 1], "PP", "SI")
        return builder.done()

    def test_long_chain_flagged_once_at_tail(self):
        diags = check(self._chain(MAX_PASS_CHAIN + 1), "ERC104")
        assert len(diags) == 1
        assert diags[0].location.stage == f"p{MAX_PASS_CHAIN}"
        assert f"depth {MAX_PASS_CHAIN + 1}" in diags[0].message

    def test_max_depth_is_clean(self):
        assert not check(self._chain(MAX_PASS_CHAIN), "ERC104")

    def test_restoring_stage_breaks_chain(self):
        builder = _builder()
        d0 = builder.input("d0")
        n1, n2, n3 = builder.wire("n1"), builder.wire("n2"), builder.wire("n3")
        out = builder.output("out")
        builder.passgate("p0", d0, builder.input("s0"), n1, "PP", "SI")
        builder.passgate("p1", n1, builder.input("s1"), n2, "PP", "SI")
        builder.inv("restore", n2, n3, "P", "N")
        builder.passgate("p2", n3, builder.input("s2"), out, "PP", "SI")
        assert not check(builder.done(), "ERC104")


class TestERC105SharedDriverSelects:
    def test_tristates_with_same_enable(self):
        builder = _builder()
        a, b, en = builder.input("a"), builder.input("b"), builder.input("en")
        out = builder.output("out")
        builder.tristate("t0", a, en, out, "P", "N")
        builder.tristate("t1", b, en, out, "P", "N")
        diags = check(builder.done(), "ERC105")
        assert len(diags) == 1
        assert "same select net" in diags[0].message
        assert diags[0].location.net == "out"

    def test_weak_passgates_with_same_select(self):
        builder = _builder()
        a, b, s = builder.input("a"), builder.input("b"), builder.input("s")
        out = builder.output("out")
        builder.passgate("p0", a, s, out, "PP", "SI", mutex="weak")
        builder.passgate("p1", b, s, out, "PP", "SI", mutex="weak")
        assert check(builder.done(), "ERC105")

    def test_distinct_enables_clean(self):
        builder = _builder()
        a, b = builder.input("a"), builder.input("b")
        e0, e1 = builder.input("e0"), builder.input("e1")
        out = builder.output("out")
        builder.tristate("t0", a, e0, out, "P", "N")
        builder.tristate("t1", b, e1, out, "P", "N")
        assert not check(builder.done(), "ERC105")


class TestERC106ClockInDataCone:
    def test_clock_on_data_pin(self):
        builder = _builder()
        clk = builder.clock()
        builder.inv("i0", clk, builder.output("out"), "P", "N")
        diags = check(builder.done(), "ERC106")
        assert len(diags) == 1
        assert diags[0].severity is Severity.WARNING
        assert "clock net clk used as data input" in diags[0].message

    def test_clock_on_clock_pin_clean(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        _domino(builder, "d0", a, builder.output("out"))
        assert not check(builder.done(), "ERC106")


class TestERC107EncodedComplement:
    def _pair(self, with_inverter):
        builder = _builder()
        a, b, s = builder.input("a"), builder.input("b"), builder.input("s")
        out = builder.output("out")
        if with_inverter:
            s_b = builder.wire("s_b")
            builder.inv("si", s, s_b, "P", "N")
        else:
            s_b = builder.input("s_b")
        builder.passgate("p0", a, s, out, "PP", "SI", mutex="encoded")
        builder.passgate("p1", b, s_b, out, "PP", "SI", mutex="encoded")
        return builder.done()

    def test_non_complementary_selects_warn(self):
        diags = check(self._pair(with_inverter=False), "ERC107")
        assert len(diags) == 1
        assert "not inverter complements" in diags[0].message

    def test_inverter_witness_clean(self):
        assert not check(self._pair(with_inverter=True), "ERC107")

    def test_unpaired_group_warns(self):
        builder = _builder()
        a, s = builder.input("a"), builder.input("s")
        out = builder.output("out")
        builder.passgate("p0", a, s, out, "PP", "SI", mutex="encoded")
        diags = check(builder.done(), "ERC107")
        assert len(diags) == 1
        assert "expected a complementary pair" in diags[0].message
