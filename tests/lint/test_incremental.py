"""Facet fingerprints + the per-rule incremental result cache."""

import copy

from repro.lint import RuleResultCache, lint_circuit
from repro.lint.incremental import (
    deserialize_diagnostic,
    options_digest,
    serialize_diagnostic,
)
from repro.lint.registry import get_rule
from repro.macros.base import MacroBuilder
from repro.netlist.fingerprint import FACET_NAMES, facet_fingerprints
from repro.netlist.nets import PinClass
from repro.models import Technology

TECH = Technology()


def _inv_chain(name="chain", load=10.0, wire_cap=0.0):
    builder = MacroBuilder(name, TECH)
    a = builder.input("a", wire_cap=wire_cap)
    mid = builder.wire("mid")
    out = builder.output("out", load=load)
    builder.size("P0"), builder.size("N0")
    builder.size("P1"), builder.size("N1")
    builder.inv("i0", a, mid, "P0", "N0")
    builder.inv("i1", mid, out, "P1", "N1")
    return builder.done()


def _domino_buf(phase="mono_rise"):
    builder = MacroBuilder("dom", TECH)
    for label in ("PC", "D", "E"):
        builder.size(label)
    clk = builder.clock()
    a = builder.input("a", phase=phase)
    builder.domino(
        "d1", [[(a, PinClass.DATA)]], clk, builder.output("out"),
        "PC", "D", "E",
    )
    return builder.done()


class TestFacetFingerprints:
    def test_names_and_determinism(self):
        circuit = _inv_chain()
        facets = facet_fingerprints(circuit)
        assert tuple(sorted(facets)) == tuple(sorted(FACET_NAMES))
        assert facets == facet_fingerprints(circuit)
        assert all(len(fp) == 64 for fp in facets.values())

    def test_identical_circuits_share_all_facets(self):
        assert facet_fingerprints(_inv_chain()) == facet_fingerprints(
            _inv_chain()
        )

    def test_load_edit_moves_only_sizing(self):
        base = facet_fingerprints(_inv_chain(load=10.0))
        edited = facet_fingerprints(_inv_chain(load=99.0))
        assert edited["sizing"] != base["sizing"]
        for facet in ("topology", "phases", "funcspec"):
            assert edited[facet] == base[facet]

    def test_wire_cap_edit_moves_only_sizing(self):
        base = facet_fingerprints(_inv_chain(wire_cap=0.0))
        edited = facet_fingerprints(_inv_chain(wire_cap=3.0))
        assert edited["sizing"] != base["sizing"]
        assert edited["topology"] == base["topology"]

    def test_phase_declaration_moves_only_phases(self):
        base = facet_fingerprints(_domino_buf("mono_rise"))
        edited = facet_fingerprints(_domino_buf("steady"))
        assert edited["phases"] != base["phases"]
        for facet in ("topology", "sizing", "funcspec"):
            assert edited[facet] == base[facet]

    def test_topology_edit_moves_topology(self):
        base = facet_fingerprints(_inv_chain())
        builder = MacroBuilder("chain", TECH)
        a = builder.input("a")
        out = builder.output("out", load=10.0)
        builder.size("P0"), builder.size("N0")
        builder.inv("i0", a, out, "P0", "N0")
        edited = facet_fingerprints(builder.done())
        assert edited["topology"] != base["topology"]


class TestSerialization:
    def test_diagnostic_round_trip(self):
        builder = MacroBuilder("race", TECH)
        for label in ("PC", "D"):
            builder.size(label)
        clk = builder.clock()
        a = builder.input("a")
        builder.domino(
            "d2", [[(a, PinClass.DATA)]], clk, builder.output("out"),
            "PC", "D", None,
        )
        report = lint_circuit(builder.done())  # DFA301/ERC105 fire
        assert report.diagnostics
        for diag in report.diagnostics:
            back = deserialize_diagnostic(serialize_diagnostic(diag))
            assert back == diag

    def test_options_digest_orders_and_distinguishes(self):
        assert options_digest(None) == options_digest({})
        assert options_digest({"a": 1, "b": 2}) == options_digest(
            {"b": 2, "a": 1}
        )
        assert options_digest({"a": 1}) != options_digest({"a": 2})


class TestRuleResultCache:
    def test_cold_then_warm_replays_everything(self):
        circuit = _inv_chain()
        cache = RuleResultCache()
        cold = lint_circuit(circuit, cache=cache)
        assert all(s == "executed" for _, _, s in cold.executed)
        warm = lint_circuit(circuit, cache=cache)
        assert all(s == "replayed" for _, _, s in warm.executed)
        assert warm.diagnostics == cold.diagnostics
        assert cache.stats.hit_rate == 0.5

    def test_replay_false_refreshes_without_serving(self):
        circuit = _inv_chain()
        cache = RuleResultCache()
        lint_circuit(circuit, cache=cache)
        again = lint_circuit(circuit, cache=cache, replay=False)
        assert all(s == "executed" for _, _, s in again.executed)

    def test_sizing_edit_invalidates_only_sizing_rules(self):
        cache = RuleResultCache()
        lint_circuit(_inv_chain(load=10.0), cache=cache)
        warm = lint_circuit(_inv_chain(load=55.0), cache=cache)
        status = {rule_id: s for rule_id, _, s in warm.executed}
        # ERC001 reads topology only -> replayed; DFA303/ERC005-style
        # sizing readers re-execute.
        assert status["ERC001"] == "replayed"
        assert get_rule("ERC005").facets == ("topology",)
        replayed = [r for r, s in status.items() if s == "replayed"]
        executed = [r for r, s in status.items() if s == "executed"]
        assert replayed and executed
        for rule_id in executed:
            assert "sizing" in get_rule(rule_id).facets

    def test_options_partition_cache_entries(self):
        circuit = _domino_buf()
        cache = RuleResultCache()
        lint_circuit(circuit, cache=cache, options={"symbolic_samples": 4})
        warm = lint_circuit(
            circuit, cache=cache, options={"symbolic_samples": 8}
        )
        assert all(s == "executed" for _, _, s in warm.executed)

    def test_waivers_apply_on_top_of_replayed_findings(self):
        from repro.lint import parse_waivers

        builder = MacroBuilder("race", TECH)
        for label in ("PC", "D"):
            builder.size(label)
        clk = builder.clock()
        a = builder.input("a")
        builder.domino(
            "d2", [[(a, PinClass.DATA)]], clk, builder.output("out"),
            "PC", "D", None,
        )
        circuit = builder.done()
        cache = RuleResultCache()
        cold = lint_circuit(circuit, cache=cache)
        assert not cold.ok
        warm = lint_circuit(
            circuit, cache=cache, waivers=parse_waivers("DFA301\nERC105\n")
        )
        assert all(s == "replayed" for _, _, s in warm.executed)
        assert warm.waived

    def test_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "rules.jsonl")
        circuit = _inv_chain()
        cache = RuleResultCache(path)
        cold = lint_circuit(circuit, cache=cache)
        cache.flush()
        reloaded = RuleResultCache(path)
        warm = lint_circuit(circuit, cache=reloaded)
        assert all(s == "replayed" for _, _, s in warm.executed)
        assert warm.diagnostics == cold.diagnostics

    def test_corrupt_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "rules.jsonl"
        circuit = _inv_chain()
        cache = RuleResultCache(str(path))
        lint_circuit(circuit, cache=cache)
        cache.flush()
        content = path.read_text()
        path.write_text("not json\n" + content + '{"key": "dangling"}\n')
        reloaded = RuleResultCache(str(path))
        warm = lint_circuit(circuit, cache=reloaded)
        assert all(s == "replayed" for _, _, s in warm.executed)

    def test_key_rejects_undeclared_facets(self):
        cache = RuleResultCache()
        rule_obj = get_rule("ERC001")
        facets = facet_fingerprints(_inv_chain())
        bogus = dict(facets)
        bogus.pop("topology")
        try:
            cache.key(rule_obj, bogus, None)
        except KeyError:
            pass
        else:
            raise AssertionError("missing declared facet must raise")


class TestElectricalFacets:
    """NSA6xx rules declare (topology, sizing[, phases]) facets, so the
    cache re-runs them on width edits but replays them under edits that
    only move facets they do not read."""

    ELECTRICAL = ("structural", "family", "dataflow", "electrical")

    def _domino(self, load=4.0, phase="mono_rise"):
        builder = MacroBuilder("dom_nsa", TECH)
        clk = builder.clock()
        nets = [builder.input(f"a{i}", phase=phase) for i in range(4)]
        for label in ("PC", "D", "E"):
            builder.size(label)
        builder.domino(
            "d0", [[(net, PinClass.DATA) for net in nets]], clk,
            builder.output("out", load=load), "PC", "D", "E",
        )
        return builder.done()

    def test_width_edit_reruns_nsa_replays_topology_rules(self):
        cache = RuleResultCache()
        lint_circuit(self._domino(load=4.0), groups=self.ELECTRICAL,
                     cache=cache)
        warm = lint_circuit(self._domino(load=44.0), groups=self.ELECTRICAL,
                            cache=cache)
        status = {rule_id: s for rule_id, _, s in warm.executed}
        for rule_id in ("NSA601", "NSA602", "NSA603", "NSA604"):
            assert status[rule_id] == "executed", (rule_id, status)
        # Topology-only rules replay across a pure sizing edit.
        assert status["ERC001"] == "replayed"
        assert status["ERC104"] == "replayed"

    def test_phase_edit_reruns_nsa604_replays_sizing_only_nsa(self):
        cache = RuleResultCache()
        lint_circuit(self._domino(phase="mono_rise"),
                     groups=self.ELECTRICAL, cache=cache)
        warm = lint_circuit(self._domino(phase="steady"),
                            groups=self.ELECTRICAL, cache=cache)
        status = {rule_id: s for rule_id, _, s in warm.executed}
        # NSA604 reads slope intervals, which depend on phase declarations.
        assert status["NSA604"] == "executed"
        for rule_id in ("NSA601", "NSA602", "NSA603"):
            assert status[rule_id] == "replayed", (rule_id, status)

    def test_declared_facets_match_registry(self):
        for rule_id in ("NSA601", "NSA602", "NSA603"):
            assert get_rule(rule_id).facets == ("topology", "sizing")
        assert get_rule("NSA604").facets == (
            "topology", "sizing", "phases"
        )
        assert get_rule("ERC103").facets == ("topology", "sizing")


class TestAdvisorGate:
    def test_gate_reuses_cache_across_calls(self):
        from repro.core.advisor import SmartAdvisor

        advisor = SmartAdvisor()
        circuit = _inv_chain()
        assert advisor._lint_gate(circuit) is None
        assert advisor._lint_cache is not None
        first = advisor._lint_cache.stats.replayed
        assert advisor._lint_gate(copy.deepcopy(circuit)) is None
        assert advisor._lint_cache.stats.replayed > first
