"""DFA301 clock-phase analysis: races, derived clocks, borrow depth.

The headline tests seed *whole-circuit* violations and assert both sides:
DFA301 catches them AND the local ERC10x rules do not — the blind spot the
dataflow group exists to close.
"""

from repro.lint import Severity, lint_circuit
from repro.lint.dataflow.phase import MAX_BORROW_PHASES, Phase, solve_phases
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()

LOCAL_FAMILY_RULES = ["ERC101", "ERC102", "ERC106"]


def _builder(name="fixture"):
    builder = MacroBuilder(name, TECH)
    for label in ("P", "N", "PC", "D", "E", "PP", "SI"):
        builder.size(label)
    return builder


def check(circuit, rule_id):
    return lint_circuit(circuit, only=[rule_id]).by_rule(rule_id)


def _domino(builder, name, in_net, out_net, clocked=True):
    return builder.domino(
        name,
        [[(in_net, PinClass.DATA)]],
        builder.circuit.net("clk"),
        out_net,
        "PC",
        "D",
        "E" if clocked else None,
    )


def _buffered_domino(builder, name, in_net, buf_net, clocked=True):
    dyn = builder.wire(f"{name}_dyn")
    _domino(builder, name, in_net, dyn, clocked=clocked)
    builder.inv(f"{name}_buf", dyn, buf_net, "P", "N")


class TestPhasePropagation:
    def test_domino_buffer_is_low_during_precharge(self):
        builder = _builder()
        builder.clock()
        a = builder.input("a")
        buf = builder.wire("buf")
        _buffered_domino(builder, "d0", a, buf)
        result = solve_phases(builder.done())
        assert result.value("d0_dyn").phase is Phase.HIGH_PRE
        assert result.value("buf").phase is Phase.LOW_PRE

    def test_derived_clock_stays_clock_through_static_logic(self):
        builder = _builder()
        clk = builder.clock()
        clkb, clkbb = builder.wire("clkb"), builder.wire("clkbb")
        builder.inv("i0", clk, clkb, "P", "N")
        builder.inv("i1", clkb, clkbb, "P", "N")
        result = solve_phases(builder.done())
        assert result.value("clkb").phase is Phase.CLOCK
        assert result.value("clkbb").phase is Phase.CLOCK

    def test_controlling_low_pins_nand_high(self):
        """A LOW_PRE input forces a NAND high during precharge even when the
        other input is a clock — no MIXED pessimism."""
        builder = _builder()
        clk = builder.clock()
        a = builder.input("a")
        buf, out = builder.wire("buf"), builder.wire("gated")
        _buffered_domino(builder, "d0", a, buf)
        builder.nand("g", [buf, clk], out, "P", "N")
        result = solve_phases(builder.done())
        assert result.value("gated").phase is Phase.HIGH_PRE

    def test_declared_input_phases_seed_the_lattice(self):
        builder = _builder()
        builder.clock()
        builder.input("r", phase="mono_rise")
        builder.input("f", phase="mono_fall")
        builder.input("s", phase="steady")
        builder.input("u")
        circuit = builder.done()
        result = solve_phases(circuit)
        assert result.value("r").phase is Phase.LOW_PRE
        assert result.value("f").phase is Phase.HIGH_PRE
        assert result.value("s").phase is Phase.STABLE_PRE
        assert result.value("u").phase is Phase.STATIC


class TestD2PhaseRace:
    def _race(self):
        """D2 leg steered by a pass gate whose select is a *derived* clock.

        Every local rule is structurally happy: the data cone roots at a
        clocked domino (ERC102 ok, odd parity so ERC101 ok) and the select
        net is signal-kind (ERC106 ok).  But during precharge the pass gate
        toggles with the clock, so the D2 leg is not guaranteed low."""
        builder = _builder()
        clk = builder.clock()
        a = builder.input("a")
        buf, clkb, steered = (
            builder.wire("buf"), builder.wire("clkb"), builder.wire("steered")
        )
        _buffered_domino(builder, "d0", a, buf)
        builder.inv("ci", clk, clkb, "P", "N")
        builder.passgate("pg", buf, clkb, steered, "PP", "SI")
        builder.domino(
            "d2",
            [[(steered, PinClass.DATA)]],
            clk,
            builder.output("out"),
            "PC",
            "D",
            None,
        )
        return builder.done()

    def test_dataflow_catches_it(self):
        diags = check(self._race(), "DFA301")
        errors = [d for d in diags if d.severity is Severity.ERROR]
        assert any(
            "no input guaranteed low during precharge" in d.message
            and d.location.stage == "d2"
            for d in errors
        )

    def test_local_rules_miss_it(self):
        """No local rule sees the race itself.  ERC106 does warn — but only
        at the clock buffer ``ci`` (clk on an inverter data pin), which any
        derived-clock circuit trips; nothing local fires at the race site
        (the pass gate or the D2)."""
        circuit = self._race()
        assert not check(circuit, "ERC101")
        assert not check(circuit, "ERC102")
        race_sites = {"pg", "d2"}
        assert not [
            d for d in check(circuit, "ERC106")
            if d.location.stage in race_sites
        ]

    def test_one_low_pin_per_leg_keeps_it_safe(self):
        """A two-series leg where one device is provably off during
        precharge is not a race, whatever the other pin does."""
        builder = _builder()
        clk = builder.clock()
        a = builder.input("a")
        sel = builder.input("sel")  # static level: unknown during precharge
        buf = builder.wire("buf")
        _buffered_domino(builder, "d0", a, buf)
        builder.domino(
            "d2",
            [[(buf, PinClass.DATA), (sel, PinClass.SELECT)]],
            clk,
            builder.output("out"),
            "PC",
            "D",
            None,
        )
        diags = check(builder.done(), "DFA301")
        assert not [d for d in diags if d.severity is Severity.ERROR]

    def test_static_fed_d2_races(self):
        builder = _builder()
        clk = builder.clock()
        a = builder.input("a")
        builder.domino(
            "d2",
            [[(a, PinClass.DATA)]],
            clk,
            builder.output("out"),
            "PC",
            "D",
            None,
        )
        diags = check(builder.done(), "DFA301")
        assert [d for d in diags if d.severity is Severity.ERROR]


class TestDerivedClockContamination:
    def test_laundered_clock_on_data_pin_warns(self):
        """clk -> inverter -> NAND data pin: ERC106 checks net *kind* and the
        inverter output is an ordinary signal net; the phase lattice still
        knows it toggles every cycle."""
        builder = _builder()
        clk = builder.clock()
        a = builder.input("a")
        clkb = builder.wire("clkb")
        builder.inv("ci", clk, clkb, "P", "N")
        builder.nand("g", [a, clkb], builder.output("out"), "P", "N")
        circuit = builder.done()
        diags = check(circuit, "DFA301")
        warnings = [d for d in diags if d.severity is Severity.WARNING]
        assert any(
            "derived clock" in d.message and d.location.net == "clkb"
            for d in warnings
        )
        # ERC106 only sees the clock-kind net at the buffer itself; the
        # laundered clkb usage at stage g is invisible to it.
        assert not [
            d for d in check(circuit, "ERC106") if d.location.stage == "g"
        ]

    def test_clock_kind_net_left_to_erc106(self):
        builder = _builder()
        clk = builder.clock()
        a = builder.input("a")
        builder.nand("g", [a, clk], builder.output("out"), "P", "N")
        diags = check(builder.done(), "DFA301")
        assert not [d for d in diags if "derived clock" in d.message]

    def test_contamination_deduped_per_net(self):
        builder = _builder()
        clk = builder.clock()
        a, b = builder.input("a"), builder.input("b")
        clkb = builder.wire("clkb")
        builder.inv("ci", clk, clkb, "P", "N")
        builder.nand("g0", [a, clkb], builder.wire("n0"), "P", "N")
        builder.nand("g1", [b, clkb], builder.output("out"), "P", "N")
        diags = check(builder.done(), "DFA301")
        assert len([d for d in diags if "derived clock" in d.message]) == 1


class TestBorrowChainDepth:
    def _chain(self, ranks):
        builder = _builder()
        builder.clock()
        net = builder.input("a")
        for i in range(ranks):
            buf = builder.wire(f"buf{i}")
            _buffered_domino(builder, f"d{i}", net, buf)
            net = buf
        builder.inv("ob", net, builder.output("out"), "P", "N")
        return builder.done()

    def test_at_limit_is_clean(self):
        diags = check(self._chain(MAX_BORROW_PHASES), "DFA301")
        assert not [d for d in diags if "borrow" in d.message.lower()]

    def test_beyond_limit_warns(self):
        diags = check(self._chain(MAX_BORROW_PHASES + 1), "DFA301")
        hits = [d for d in diags if "time" in d.message and "borrow" in d.message]
        assert hits
        assert all(d.severity is Severity.WARNING for d in hits)
        assert hits[0].location.stage == f"d{MAX_BORROW_PHASES}"
