"""Interface-contract derivation + the content-addressed contract store."""

import pytest

from repro.cache.contracts import ContractStore
from repro.lint import RuleResultCache, derive_contract, macro_identity
from repro.lint.contracts import (
    CONTRACT_FORMAT,
    CONTRACT_VERSION,
    build_registry_contracts,
)
from repro.macros import MacroSpec, default_database
from repro.models import ModelLibrary, Technology
from repro.netlist.fingerprint import circuit_fingerprint

TECH = Technology()
LIBRARY = ModelLibrary(TECH)
DATABASE = default_database()


def _generate(macro_type, width, frag):
    spec = MacroSpec(macro_type, width)
    gen = next(g for g in DATABASE.applicable(spec) if frag in g.name)
    return gen.name, spec, gen.generate(spec, TECH)


@pytest.fixture(scope="module")
def decoder():
    return _generate("decoder", 2, "flat_static")


@pytest.fixture(scope="module")
def domino_zero():
    return _generate("zero_detect", 4, "domino")


class TestMacroIdentity:
    def test_shape_and_params(self):
        spec = MacroSpec("mux", 4, output_load=12.5)
        ident = macro_identity("mux/strong", spec)
        assert ident == "mux/strong|w4|L12.5"
        with_params = MacroSpec(
            "register_file", 2, params=(("registers", 4),)
        )
        assert macro_identity("rf/x", with_params).endswith("registers=4")

    def test_sizing_independent(self):
        a = macro_identity("t", MacroSpec("mux", 4))
        b = macro_identity("t", MacroSpec("mux", 4))
        assert a == b


class TestDeriveContract:
    def test_static_macro_contract_facts(self, decoder):
        topo, spec, circuit = decoder
        contract = derive_contract(
            circuit, LIBRARY, identity=macro_identity(topo, spec)
        )
        assert contract["format"] == CONTRACT_FORMAT
        assert contract["version"] == CONTRACT_VERSION
        assert contract["fingerprint"] == circuit_fingerprint(circuit)
        assert set(contract["facets"]) == {
            "topology", "sizing", "phases", "funcspec"
        }
        ins = {
            k: v for k, v in contract["ports"].items()
            if v["direction"] == "in"
        }
        outs = {
            k: v for k, v in contract["ports"].items()
            if v["direction"] == "out"
        }
        assert set(ins) == {"a0", "a1"}
        assert set(outs) == {"o0", "o1", "o2", "o3"}
        for port in ins.values():
            assert port["declared_phase"] is None
            assert 0 < port["cap_lo"] <= port["cap_hi"]
        for port in outs.values():
            assert port["phase"] == "static"
            assert port["mono"] == "steady"
            assert port["load_budget"] == spec.output_load
            assert port["arr_lo"] <= port["arr_hi"]
        assert contract["funcspec"]["status"] == "proved"
        assert contract["slice_signature"]
        assert contract["findings"] == []
        assert contract["rules"]

    def test_domino_macro_records_phase_and_mono(self, domino_zero):
        topo, spec, circuit = domino_zero
        contract = derive_contract(circuit, LIBRARY)
        outs = [
            v for v in contract["ports"].values() if v["direction"] == "out"
        ]
        assert outs
        # A domino cone driven by undeclared (steady-assumed) inputs
        # settles monotonically at its outputs.
        assert all(
            v["mono"] in ("rising", "falling", "steady") for v in outs
        )
        assert any(v["phase"] != "static" for v in outs)
        # clock is not a port
        assert circuit.clock not in contract["ports"]

    def test_findings_are_embedded(self):
        from repro.macros.base import MacroBuilder
        from repro.netlist.nets import PinClass

        builder = MacroBuilder("race", TECH)
        for label in ("PC", "D"):
            builder.size(label)
        clk = builder.clock()
        a = builder.input("a")
        builder.domino(
            "d2", [[(a, PinClass.DATA)]], clk, builder.output("out"),
            "PC", "D", None,
        )
        contract = derive_contract(builder.done(), LIBRARY)
        rules = {f["rule"] for f in contract["findings"]}
        assert "DFA301" in rules

    def test_rule_cache_threads_through(self, decoder):
        _, _, circuit = decoder
        cache = RuleResultCache()
        derive_contract(circuit, LIBRARY, rule_cache=cache)
        cold = cache.stats.executed
        assert cold > 0
        derive_contract(circuit, LIBRARY, rule_cache=cache)
        assert cache.stats.executed == cold
        assert cache.stats.replayed == cold

    def test_deterministic(self, decoder):
        _, _, circuit = decoder
        a = derive_contract(circuit, LIBRARY)
        b = derive_contract(circuit, LIBRARY)
        for fld in ("ports", "funcspec", "slice_signature", "findings",
                    "fingerprint", "facets"):
            assert a[fld] == b[fld]


class TestContractStore:
    def test_round_trip_and_identity_index(self, tmp_path, decoder):
        topo, spec, circuit = decoder
        path = str(tmp_path / "contracts.jsonl")
        store = ContractStore(path)
        contract = derive_contract(
            circuit, LIBRARY, identity=macro_identity(topo, spec)
        )
        store.put(contract)
        assert contract["fingerprint"] in store
        reloaded = ContractStore(path)
        assert len(reloaded) == 1
        got = reloaded.get(contract["fingerprint"])
        assert got["ports"] == contract["ports"]
        by_ident = reloaded.for_identity(macro_identity(topo, spec))
        assert [c["fingerprint"] for c in by_ident] == [
            contract["fingerprint"]
        ]

    def test_put_requires_fingerprint(self, tmp_path):
        store = ContractStore(str(tmp_path / "c.jsonl"))
        with pytest.raises(ValueError):
            store.put({"identity": "x"})

    def test_corrupt_lines_skipped(self, tmp_path, decoder):
        _, _, circuit = decoder
        path = tmp_path / "contracts.jsonl"
        store = ContractStore(str(path))
        store.put(derive_contract(circuit, LIBRARY))
        path.write_text("garbage\n" + path.read_text())
        reloaded = ContractStore(str(path))
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 1


class TestBuildRegistryContracts:
    GRID = (("decoder", 2, ()), ("zero_detect", 4, ()))

    def test_cold_then_changed_only_reuses(self, tmp_path):
        store = ContractStore(str(tmp_path / "contracts.jsonl"))
        cold = build_registry_contracts(store, LIBRARY, grid=self.GRID)
        assert cold["derived"] == len(store) > 0
        assert cold["reused"] == 0
        warm = build_registry_contracts(
            store, LIBRARY, grid=self.GRID, changed_only=True
        )
        assert warm["derived"] == 0
        assert warm["reused"] == cold["derived"]

    def test_macro_filter(self, tmp_path):
        store = ContractStore(str(tmp_path / "contracts.jsonl"))
        stats = build_registry_contracts(
            store, LIBRARY, grid=self.GRID, macro="decoder"
        )
        assert stats["derived"] > 0
        assert all(
            entry["identity"].startswith("decoder")
            for entry in store.entries()
        )

    def test_cli_main(self, tmp_path, capsys):
        from repro.lint.contracts import main

        path = str(tmp_path / "contracts.jsonl")
        assert main(["--store", path, "--macro", "decoder/flat_static"]) == 0
        out = capsys.readouterr().out
        assert "derived" in out
        assert len(ContractStore(path)) > 0
