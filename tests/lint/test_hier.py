"""Hierarchical contract composition: CTR501-505, flatten, incrementality."""

import pytest

from repro.blocks import demo_block
from repro.cache.contracts import ContractStore
from repro.lint import lint_circuit
from repro.lint.hier import (
    HierBlock,
    HierConnection,
    HierInstance,
    flatten,
    hier_from_block,
    lint_hier,
    mono_le,
    mono_satisfies,
    phase_le,
    phase_satisfies,
)
from repro.macros.base import MacroBuilder
from repro.models import ModelLibrary, Technology
from repro.netlist.nets import PinClass

TECH = Technology()
LIBRARY = ModelLibrary(TECH)


def _static_driver(name="drv", load=20.0):
    """INV pair: a -> out, static/steady output."""
    builder = MacroBuilder(name, TECH)
    a = builder.input("a")
    mid = builder.wire("mid")
    out = builder.output("out", load=load)
    for label in ("P0", "N0", "P1", "N1"):
        builder.size(label)
    builder.inv("i0", a, mid, "P0", "N0")
    builder.inv("i1", mid, out, "P1", "N1")
    return builder.done()


def _domino_sink(name="dsink"):
    """Clocked domino whose data input is declared mono_rise."""
    builder = MacroBuilder(name, TECH)
    for label in ("PC", "D", "E"):
        builder.size(label)
    clk = builder.clock()
    a = builder.input("a", phase="mono_rise")
    builder.domino(
        "d1", [[(a, PinClass.DATA)]], clk, builder.output("out"),
        "PC", "D", "E",
    )
    return builder.done()


def _domino_driver(name="ddrv"):
    """Clocked domino driving its (monotone, precharged) node output."""
    builder = MacroBuilder(name, TECH)
    for label in ("PC", "D", "E"):
        builder.size(label)
    clk = builder.clock()
    a = builder.input("a", phase="mono_rise")
    builder.domino(
        "d1", [[(a, PinClass.DATA)]], clk, builder.output("out", load=20.0),
        "PC", "D", "E",
    )
    return builder.done()


def _static_sink(name="ssink"):
    builder = MacroBuilder(name, TECH)
    a = builder.input("a")
    out = builder.output("out", load=20.0)
    builder.size("P0"), builder.size("N0")
    builder.inv("i0", a, out, "P0", "N0")
    return builder.done()


def _block(name, pairs, connections):
    return HierBlock(
        name,
        [HierInstance(iname, circ, identity=iname) for iname, circ in pairs],
        connections,
    )


class TestBadnessOrders:
    def test_phase_reflexive_and_top(self):
        for v in ("low", "high", "stable", "static", "clock", "mixed"):
            assert phase_le(v, v)
            assert phase_le(v, "mixed")
        assert not phase_le("mixed", "static")
        assert not phase_le("clock", "static")
        assert not phase_le("static", "low")
        assert phase_le("low", "static")
        assert not phase_le(None, "static")

    def test_mono_reflexive_and_top(self):
        for v in ("steady", "rising", "falling", "clock", "nonmono"):
            assert mono_le(v, v)
            assert mono_le(v, "nonmono")
        assert not mono_le("rising", "steady")
        assert not mono_le("falling", "rising")
        assert mono_le("steady", "rising")

    def test_satisfies_uses_declared_assumption(self):
        # undeclared input characterized as static/steady
        assert phase_satisfies("static", None)
        assert not phase_satisfies("clock", None)
        assert mono_satisfies("steady", None)
        assert not mono_satisfies("rising", None)
        # declared mono_rise characterized as low/rising
        assert phase_satisfies("low", "mono_rise")
        assert not phase_satisfies("static", "mono_rise")
        assert mono_satisfies("rising", "mono_rise")
        assert mono_satisfies("steady", "mono_rise")
        assert not mono_satisfies("falling", "mono_rise")


class TestCompositionRules:
    def test_clean_static_pair(self):
        block = _block(
            "pair",
            [("u0", _static_driver()), ("u1", _static_sink())],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),))],
        )
        result = lint_hier(block, LIBRARY)
        assert result.ok
        assert not result.block_report.by_rule("CTR501")
        assert not result.block_report.by_rule("CTR502")

    def test_ctr501_static_into_declared_domino_input(self):
        block = _block(
            "bad501",
            [("u0", _static_driver()), ("u1", _domino_sink())],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),))],
        )
        result = lint_hier(block, LIBRARY)
        assert not result.ok
        findings = result.block_report.by_rule("CTR501")
        assert len(findings) == 1
        assert "characterized against 'mono_rise'" in findings[0].message

    def test_ctr502_domino_rail_into_undeclared_static_input(self):
        block = _block(
            "bad502",
            [("u0", _domino_driver()), ("u1", _static_sink())],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),))],
        )
        result = lint_hier(block, LIBRARY)
        assert not result.ok
        findings = result.block_report.by_rule("CTR502")
        assert len(findings) == 1
        assert "undeclared (steady)" in findings[0].message
        # the phase hand-off itself is fine: precharged-high covers static
        assert not result.block_report.by_rule("CTR501")

    def test_ctr503_overload_warning(self):
        block = _block(
            "load",
            [("u0", _static_driver(load=1.0)), ("u1", _static_sink())],
            [HierConnection(
                "n0", ("u0", "out"), (("u1", "a"),), wire_cap=500.0,
            )],
        )
        result = lint_hier(block, LIBRARY)
        assert result.ok  # warning, not error
        findings = result.block_report.by_rule("CTR503")
        assert len(findings) == 1
        assert "drive budget" in findings[0].message

    def test_bogus_endpoints_reported(self):
        block = _block(
            "bogus",
            [("u0", _static_driver()), ("u1", _static_sink())],
            [HierConnection("n0", ("u0", "nope"), (("u1", "also_no"),))],
        )
        result = lint_hier(block, LIBRARY)
        assert not result.ok


class TestStaleContracts:
    def test_cold_store_notes_underived_under_changed_only(self):
        block = _block(
            "cold",
            [("u0", _static_driver())],
            [],
        )
        result = lint_hier(block, LIBRARY, changed_only=True)
        notes = result.block_report.by_rule("CTR504")
        assert len(notes) == 1
        assert "derived cold" in notes[0].message

    def test_ctr504_fires_when_macro_edited_after_characterization(self):
        store = ContractStore()
        old = _block("b", [("u0", _static_driver(load=10.0))], [])
        lint_hier(old, LIBRARY, store)
        edited = _block("b", [("u0", _static_driver(load=77.0))], [])
        result = lint_hier(edited, LIBRARY, store, changed_only=True)
        notes = result.block_report.by_rule("CTR504")
        assert len(notes) == 1
        assert "edited after characterization" in notes[0].message
        assert result.stats.contracts_derived == 1

    def test_no_ctr504_on_current_contract(self):
        store = ContractStore()
        block = _block("b", [("u0", _static_driver())], [])
        lint_hier(block, LIBRARY, store)
        result = lint_hier(block, LIBRARY, store, changed_only=True)
        assert not result.block_report.by_rule("CTR504")
        assert result.stats.contracts_reused == 1
        assert result.stats.contracts_derived == 0


class TestVerifyContracts:
    def test_clean_audit_on_demo_block(self):
        design = demo_block(LIBRARY)
        block = hier_from_block(design)
        store = ContractStore()
        result = lint_hier(block, LIBRARY, store, verify=len(block.instances))
        assert result.ok
        assert not result.block_report.by_rule("CTR505")
        assert result.stats.verified_instances == len(block.instances)

    def test_tampered_contract_is_caught(self):
        store = ContractStore()
        block = _block(
            "pair",
            [("u0", _static_driver()), ("u1", _static_sink())],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),))],
        )
        lint_hier(block, LIBRARY, store)
        fp = next(iter(store.entries()))["fingerprint"]
        tampered = store.get(fp)
        for port in tampered["ports"].values():
            if port["direction"] == "out":
                port["phase"] = "low"  # claim stronger than reality
        result = lint_hier(
            block, LIBRARY, store,
            changed_only=True, verify=len(block.instances),
        )
        drift = result.block_report.by_rule("CTR505")
        assert drift
        assert not result.ok


class TestFlatten:
    def test_flat_demo_block_lints_clean(self):
        design = demo_block(LIBRARY)
        flat = flatten(hier_from_block(design))
        report = lint_circuit(flat)
        assert report.ok, [d.format() for d in report.diagnostics]

    def test_connected_ports_are_internal(self):
        design = demo_block(LIBRARY)
        block = hier_from_block(design)
        flat = flatten(block)
        for conn in block.connections:
            assert conn.net in flat.nets
            assert conn.net not in flat.primary_inputs
        # unconnected macro I/O became block I/O
        assert any(n.startswith("static_ripple") for n in flat.primary_inputs)

    def test_merged_circuit_matches_flatten_on_connections(self):
        design = demo_block(LIBRARY)
        merged = design.merged_circuit()
        for conn in design.connections:
            assert conn.net in merged.nets
            assert merged.net(conn.net).wire_cap == conn.wire_cap
        report = lint_circuit(merged)
        assert report.ok, [d.format() for d in report.diagnostics]


class TestIncrementalHier:
    def test_warm_pass_hits_90_percent_with_identical_findings(self):
        design = demo_block(LIBRARY)
        block = hier_from_block(design)
        store = ContractStore()
        cold = lint_hier(block, LIBRARY, store)
        warm = lint_hier(block, LIBRARY, store, changed_only=True)
        assert warm.stats.hit_rate >= 0.9
        assert warm.stats.contracts_derived == 0
        fmt = lambda res: [
            d.format() for r in res.reports for d in r.diagnostics
        ]
        assert fmt(warm) == fmt(cold)

    def test_editing_one_macro_rederives_only_it(self):
        store = ContractStore()
        old = _block(
            "two",
            [("u0", _static_driver(load=10.0)), ("u1", _static_sink())],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),))],
        )
        lint_hier(old, LIBRARY, store)
        edited = _block(
            "two",
            [("u0", _static_driver(load=44.0)), ("u1", _static_sink())],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),))],
        )
        result = lint_hier(edited, LIBRARY, store, changed_only=True)
        assert result.stats.contracts_derived == 1
        assert result.stats.contracts_reused == 1

    def test_rule_cache_limits_rederivation_to_changed_facets(self):
        from repro.lint import RuleResultCache

        store = ContractStore()
        rule_cache = RuleResultCache()
        old = _block("one", [("u0", _static_driver(load=10.0))], [])
        lint_hier(old, LIBRARY, store, rule_cache=rule_cache)
        cold_executed = rule_cache.stats.executed
        # sizing-only edit: topology/phase/funcspec rules replay
        edited = _block("one", [("u0", _static_driver(load=44.0))], [])
        lint_hier(
            edited, LIBRARY, store,
            changed_only=True, rule_cache=rule_cache,
        )
        assert rule_cache.stats.replayed > 0
        assert rule_cache.stats.executed - cold_executed < cold_executed

    def test_replicas_share_one_contract(self):
        shared = _static_driver()
        block = HierBlock(
            "rep",
            [
                HierInstance("u0", shared, identity="drv"),
                HierInstance("u1", shared, identity="drv"),
            ],
            [],
        )
        result = lint_hier(block, LIBRARY)
        assert result.stats.contracts_derived == 1
        assert result.stats.contracts_reused == 1


class TestHierFromBlock:
    def test_adapter_names_and_wiring(self):
        design = demo_block(LIBRARY)
        block = hier_from_block(design)
        assert len(block.instances) == len(design.macros)
        names = {i.name for i in block.instances}
        for conn in block.connections:
            assert conn.driver[0] in names
            for inst, _ in conn.sinks:
                assert inst in names
        for inst in block.instances:
            assert "|" in inst.identity  # macro_identity shape

    def test_ledger_records_hier_run(self, tmp_path):
        from repro.obs import perf

        design = demo_block(LIBRARY)
        block = hier_from_block(design)
        ledger_path = str(tmp_path / "ledger.jsonl")
        with perf.ledger_scope(ledger_path):
            lint_hier(block, LIBRARY)
        records = perf.RunLedger.load(ledger_path).records
        kinds = {r["kind"] for r in records}
        assert "hier_lint" in kinds
        assert "rule" in kinds
        hier_rec = next(r for r in records if r["kind"] == "hier_lint")
        assert hier_rec["cache"]["contracts_derived"] == len(block.instances)
