"""Golden corpus: every registered macro generator, across sizes, lints
with ZERO errors.

This is the contract behind the advisor's pre-sizing gate: the database is
clean, so any error a designer edit introduces is new.  Warnings are
allowed (the corpus has known dangling dual-rail stubs and charge-sharing
heuristic hits) but errors fail the build.
"""

import pytest

from repro.lint import Severity, lint_circuit
from repro.macros.base import MacroSpec
from repro.macros.registry import default_database
from repro.models import Technology

DATABASE = default_database()
TECH = Technology()


def _widths(generator):
    """Small / middle / largest applicable width for a generator.

    Widths are probed rather than fixed because several topologies only
    exist at exact sizes (comparator/xorsum2 wants 32); decoders are capped
    at 8 select bits since their output count is ``2**width``.
    """
    cap = 8 if generator.macro_type == "decoder" else 64
    widths = [
        w for w in range(2, cap + 1)
        if generator.applicable(MacroSpec(generator.macro_type, w))
    ]
    assert widths, f"{generator.name}: no applicable width <= {cap}"
    return sorted({widths[0], widths[len(widths) // 2], widths[-1]})


@pytest.mark.parametrize(
    "topology", [g.name for g in DATABASE.topologies()]
)
def test_corpus_is_error_free(topology):
    generator = DATABASE.generator(topology)
    for width in _widths(generator):
        circuit = generator.generate(
            MacroSpec(generator.macro_type, width), TECH
        )
        report = lint_circuit(circuit)
        assert report.errors == [], (
            f"{topology}[{width}]: "
            + "; ".join(d.format() for d in report.errors)
        )


def test_corpus_warnings_are_known_rules():
    """Corpus warnings stay within the expected heuristic rules — anything
    else is a new finding someone should triage."""
    allowed = {"ERC004", "ERC007", "ERC103"}
    seen = set()
    for generator in DATABASE.topologies():
        for width in _widths(generator):
            circuit = generator.generate(
                MacroSpec(generator.macro_type, width), TECH
            )
            for diag in lint_circuit(circuit).warnings:
                assert diag.severity is Severity.WARNING
                seen.add(diag.rule_id)
    assert seen <= allowed, f"unexpected warning rules: {seen - allowed}"
