"""Waiver edge cases + the SARIF reporter (satellites of the dataflow PR)."""

import json

from repro.lint import (
    Diagnostic,
    Location,
    LintReport,
    Severity,
    lint_circuit,
    parse_waivers,
    render_sarif,
    sarif_dict,
)
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()


def _d2_race_circuit():
    """Static input straight into a footless D2 leg: one DFA301 error."""
    builder = MacroBuilder("race", TECH)
    for label in ("PC", "D"):
        builder.size(label)
    clk = builder.clock()
    a = builder.input("a")
    builder.domino(
        "d2", [[(a, PinClass.DATA)]], clk, builder.output("out"),
        "PC", "D", None,
    )
    return builder.done()


class TestWaiverEdgeCases:
    def test_pattern_matching_no_rule_changes_nothing(self):
        circuit = _d2_race_circuit()
        baseline = lint_circuit(circuit, only=["DFA301"])
        assert baseline.errors
        report = lint_circuit(
            circuit, only=["DFA301"],
            waivers=parse_waivers("ZZZ9* *\nERC999 stage nowhere\n"),
        )
        assert not report.ok
        assert not report.waived
        assert len(report.errors) == len(baseline.errors)

    def test_waiving_error_severity_dataflow_finding_flips_ok(self):
        circuit = _d2_race_circuit()
        report = lint_circuit(
            circuit, only=["DFA301"],
            waivers=parse_waivers("DFA301 stage d2*  # accepted race\n"),
        )
        assert report.ok
        assert not report.errors
        assert report.waived
        assert all(d.rule_id == "DFA301" for d in report.waived)

    def test_duplicate_waiver_lines_are_idempotent(self):
        circuit = _d2_race_circuit()
        once = lint_circuit(
            circuit, only=["DFA301"], waivers=parse_waivers("DFA301\n")
        )
        thrice = lint_circuit(
            circuit, only=["DFA301"],
            waivers=parse_waivers("DFA301\nDFA301\nDFA301  *\n"),
        )
        assert thrice.ok == once.ok
        assert len(thrice.waived) == len(once.waived)
        assert len(thrice.diagnostics) == len(once.diagnostics)


class TestSarif:
    def _report(self):
        return LintReport(
            subject="unit",
            diagnostics=[
                Diagnostic(
                    "DFA301", Severity.ERROR, "boom",
                    Location(stage="d2", pin="in0"),
                ),
                Diagnostic(
                    "DFA302", Severity.WARNING, "glitchy",
                    Location(stage="g0"),
                ).with_waived(),
            ],
        )

    def test_skeleton(self):
        doc = sarif_dict(self._report())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 2

    def test_rules_array_and_indices(self):
        doc = sarif_dict(self._report())
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)  # deterministic ordering
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        by_id = {r["id"]: r for r in rules}
        assert by_id["DFA301"]["defaultConfiguration"]["level"] == "error"

    def test_levels_and_logical_locations(self):
        doc = sarif_dict(self._report())
        error, warning = doc["runs"][0]["results"]
        assert error["level"] == "error"
        assert warning["level"] == "warning"
        fqn = error["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
        assert fqn == "unit: stage d2 pin in0"

    def test_waived_becomes_suppression(self):
        doc = sarif_dict(self._report())
        error, warning = doc["runs"][0]["results"]
        assert "suppressions" not in error
        assert warning["suppressions"][0]["kind"] == "external"

    def test_unknown_rule_id_still_valid(self):
        report = LintReport(
            subject="x",
            diagnostics=[Diagnostic("ADHOC1", Severity.ERROR, "msg")],
        )
        doc = sarif_dict(report)
        assert doc["runs"][0]["tool"]["driver"]["rules"] == [{"id": "ADHOC1"}]

    def test_multiple_reports_share_one_run(self):
        reports = [self._report(), LintReport(subject="other", diagnostics=[
            Diagnostic("DFA303", Severity.ERROR, "infeasible"),
        ])]
        doc = sarif_dict(reports)
        assert len(doc["runs"]) == 1
        assert len(doc["runs"][0]["results"]) == 3
        fqns = {
            r["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
            for r in doc["runs"][0]["results"]
        }
        assert "other" in fqns  # bare subject when no location

    def test_render_sarif_round_trips_through_json(self):
        parsed = json.loads(render_sarif(self._report()))
        assert parsed == sarif_dict(self._report())

    def test_real_lint_run_renders(self):
        report = lint_circuit(_d2_race_circuit(), only=["DFA301"])
        doc = sarif_dict(report)
        assert any(
            r["ruleId"] == "DFA301" for r in doc["runs"][0]["results"]
        )


class TestContractWaivers:
    """Waiver files x SARIF suppressions x the CTR5xx contract rules."""

    def _bad_block_result(self, waivers=()):
        from repro.lint.hier import HierBlock, HierConnection, HierInstance, lint_hier
        from repro.macros.base import MacroBuilder
        from repro.models import ModelLibrary

        def static_driver():
            builder = MacroBuilder("drv", TECH)
            a = builder.input("a")
            out = builder.output("out", load=20.0)
            builder.size("P0"), builder.size("N0")
            builder.inv("i0", a, out, "P0", "N0")
            return builder.done()

        def domino_sink():
            builder = MacroBuilder("dsink", TECH)
            for label in ("PC", "D", "E"):
                builder.size(label)
            clk = builder.clock()
            a = builder.input("a", phase="mono_rise")
            builder.domino(
                "d1", [[(a, PinClass.DATA)]], clk, builder.output("out"),
                "PC", "D", "E",
            )
            return builder.done()

        block = HierBlock(
            "bad",
            [
                HierInstance("u0", static_driver(), identity="drv"),
                HierInstance("u1", domino_sink(), identity="dsink"),
            ],
            [HierConnection("n0", ("u0", "out"), (("u1", "a"),), wire_cap=900.0)],
        )
        return lint_hier(block, ModelLibrary(TECH), waivers=waivers)

    def test_unwaived_ctr_findings_fail_the_block(self):
        result = self._bad_block_result()
        assert not result.ok
        rules = {d.rule_id for d in result.block_report.diagnostics}
        assert "CTR501" in rules
        assert "CTR503" in rules

    def test_fnmatch_group_pattern_waives_all_ctr_rules(self):
        result = self._bad_block_result(
            waivers=parse_waivers("CTR5* *  # accepted boundary debt\n")
        )
        assert result.ok
        assert result.block_report.waived
        assert not result.block_report.errors
        assert all(
            d.rule_id.startswith("CTR5")
            for d in result.block_report.waived
        )

    def test_specific_ctr_waiver_leaves_others_unwaived(self):
        result = self._bad_block_result(
            waivers=parse_waivers("CTR503 *net n0*\n")
        )
        assert not result.ok  # CTR501 error survives
        waived_rules = {d.rule_id for d in result.block_report.waived}
        assert waived_rules == {"CTR503"}

    def test_waived_ctr_findings_become_sarif_suppressions(self):
        result = self._bad_block_result(
            waivers=parse_waivers("CTR5* *\n")
        )
        doc = sarif_dict(result.reports)
        ctr_results = [
            r for r in doc["runs"][0]["results"]
            if r["ruleId"].startswith("CTR5")
        ]
        assert ctr_results
        assert all(
            r["suppressions"][0]["kind"] == "external" for r in ctr_results
        )
        rule_ids = {
            r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"CTR501", "CTR503"} <= rule_ids

    def test_ctr_rules_have_sarif_metadata(self):
        result = self._bad_block_result()
        doc = sarif_dict(result.reports)
        driver_rules = {
            r["id"]: r for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        ctr = driver_rules["CTR501"]
        assert ctr["defaultConfiguration"]["level"] == "error"
        assert "phase" in ctr["name"]


class TestDeterministicReporters:
    """Satellite: output ordering is canonical and version-stamped."""

    def _shuffled_reports(self):
        diags = [
            Diagnostic("ERC001", Severity.ERROR, "b-msg",
                       Location(net="n1")),
            Diagnostic("ERC001", Severity.ERROR, "a-msg",
                       Location(net="n1")),
            Diagnostic("DFA301", Severity.ERROR, "z-msg",
                       Location(stage="s9")),
            Diagnostic("CTR503", Severity.WARNING, "load",
                       Location(net="n0")),
        ]
        fwd = LintReport(subject="unit", diagnostics=list(diags))
        rev = LintReport(subject="unit", diagnostics=list(reversed(diags)))
        return fwd, rev

    def test_text_is_emission_order_independent(self):
        from repro.lint import render_text

        fwd, rev = self._shuffled_reports()
        assert render_text(fwd) == render_text(rev)

    def test_json_is_emission_order_independent_and_sorted(self):
        from repro.lint.reporters import report_dict

        fwd, rev = self._shuffled_reports()
        assert report_dict(fwd) == report_dict(rev)
        keys = [
            (d["rule"], d["location"], d["message"])
            for d in report_dict(fwd)["diagnostics"]
        ]
        assert keys == sorted(keys)

    def test_sarif_is_emission_order_independent(self):
        fwd, rev = self._shuffled_reports()
        assert sarif_dict(fwd) == sarif_dict(rev)

    def test_json_round_trip_with_versions(self):
        from repro import __version__
        from repro.lint.reporters import SCHEMA_VERSION, render_json

        fwd, _ = self._shuffled_reports()
        parsed = json.loads(render_json(fwd))
        assert parsed["schema_version"] == SCHEMA_VERSION
        assert parsed["tool_version"] == __version__
        assert len(parsed["diagnostics"]) == len(fwd.diagnostics)

    def test_sarif_driver_carries_tool_version(self):
        from repro import __version__

        fwd, _ = self._shuffled_reports()
        doc = sarif_dict(fwd)
        assert doc["runs"][0]["tool"]["driver"]["version"] == __version__
