"""Waiver edge cases + the SARIF reporter (satellites of the dataflow PR)."""

import json

from repro.lint import (
    Diagnostic,
    Location,
    LintReport,
    Severity,
    lint_circuit,
    parse_waivers,
    render_sarif,
    sarif_dict,
)
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist.nets import PinClass

TECH = Technology()


def _d2_race_circuit():
    """Static input straight into a footless D2 leg: one DFA301 error."""
    builder = MacroBuilder("race", TECH)
    for label in ("PC", "D"):
        builder.size(label)
    clk = builder.clock()
    a = builder.input("a")
    builder.domino(
        "d2", [[(a, PinClass.DATA)]], clk, builder.output("out"),
        "PC", "D", None,
    )
    return builder.done()


class TestWaiverEdgeCases:
    def test_pattern_matching_no_rule_changes_nothing(self):
        circuit = _d2_race_circuit()
        baseline = lint_circuit(circuit, only=["DFA301"])
        assert baseline.errors
        report = lint_circuit(
            circuit, only=["DFA301"],
            waivers=parse_waivers("ZZZ9* *\nERC999 stage nowhere\n"),
        )
        assert not report.ok
        assert not report.waived
        assert len(report.errors) == len(baseline.errors)

    def test_waiving_error_severity_dataflow_finding_flips_ok(self):
        circuit = _d2_race_circuit()
        report = lint_circuit(
            circuit, only=["DFA301"],
            waivers=parse_waivers("DFA301 stage d2*  # accepted race\n"),
        )
        assert report.ok
        assert not report.errors
        assert report.waived
        assert all(d.rule_id == "DFA301" for d in report.waived)

    def test_duplicate_waiver_lines_are_idempotent(self):
        circuit = _d2_race_circuit()
        once = lint_circuit(
            circuit, only=["DFA301"], waivers=parse_waivers("DFA301\n")
        )
        thrice = lint_circuit(
            circuit, only=["DFA301"],
            waivers=parse_waivers("DFA301\nDFA301\nDFA301  *\n"),
        )
        assert thrice.ok == once.ok
        assert len(thrice.waived) == len(once.waived)
        assert len(thrice.diagnostics) == len(once.diagnostics)


class TestSarif:
    def _report(self):
        return LintReport(
            subject="unit",
            diagnostics=[
                Diagnostic(
                    "DFA301", Severity.ERROR, "boom",
                    Location(stage="d2", pin="in0"),
                ),
                Diagnostic(
                    "DFA302", Severity.WARNING, "glitchy",
                    Location(stage="g0"),
                ).with_waived(),
            ],
        )

    def test_skeleton(self):
        doc = sarif_dict(self._report())
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == 2

    def test_rules_array_and_indices(self):
        doc = sarif_dict(self._report())
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        ids = [r["id"] for r in rules]
        assert ids == sorted(ids)  # deterministic ordering
        for result in run["results"]:
            assert ids[result["ruleIndex"]] == result["ruleId"]
        by_id = {r["id"]: r for r in rules}
        assert by_id["DFA301"]["defaultConfiguration"]["level"] == "error"

    def test_levels_and_logical_locations(self):
        doc = sarif_dict(self._report())
        error, warning = doc["runs"][0]["results"]
        assert error["level"] == "error"
        assert warning["level"] == "warning"
        fqn = error["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
        assert fqn == "unit: stage d2 pin in0"

    def test_waived_becomes_suppression(self):
        doc = sarif_dict(self._report())
        error, warning = doc["runs"][0]["results"]
        assert "suppressions" not in error
        assert warning["suppressions"][0]["kind"] == "external"

    def test_unknown_rule_id_still_valid(self):
        report = LintReport(
            subject="x",
            diagnostics=[Diagnostic("ADHOC1", Severity.ERROR, "msg")],
        )
        doc = sarif_dict(report)
        assert doc["runs"][0]["tool"]["driver"]["rules"] == [{"id": "ADHOC1"}]

    def test_multiple_reports_share_one_run(self):
        reports = [self._report(), LintReport(subject="other", diagnostics=[
            Diagnostic("DFA303", Severity.ERROR, "infeasible"),
        ])]
        doc = sarif_dict(reports)
        assert len(doc["runs"]) == 1
        assert len(doc["runs"][0]["results"]) == 3
        fqns = {
            r["locations"][0]["logicalLocations"][0]["fullyQualifiedName"]
            for r in doc["runs"][0]["results"]
        }
        assert "other" in fqns  # bare subject when no location

    def test_render_sarif_round_trips_through_json(self):
        parsed = json.loads(render_sarif(self._report()))
        assert parsed == sarif_dict(self._report())

    def test_real_lint_run_renders(self):
        report = lint_circuit(_d2_race_circuit(), only=["DFA301"])
        doc = sarif_dict(report)
        assert any(
            r["ruleId"] == "DFA301" for r in doc["runs"][0]["results"]
        )
