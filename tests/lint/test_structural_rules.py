"""One positive (clean) and one negative (broken-fixture) test per
structural rule ``ERC001``–``ERC009``."""

import pytest

from repro.lint import Severity, lint_circuit
from repro.macros.base import MacroBuilder
from repro.models import Technology
from repro.netlist.circuit import CircuitError
from repro.netlist.nets import Pin, PinClass
from repro.netlist.stages import Stage, StageKind
from repro.netlist.validate import validate_circuit

TECH = Technology()


def _builder(name="fixture"):
    builder = MacroBuilder(name, TECH)
    builder.size("P")
    builder.size("N")
    return builder


def check(circuit, rule_id):
    """Run one rule; return its diagnostics."""
    return lint_circuit(circuit, only=[rule_id]).by_rule(rule_id)


class TestERC001MultipleDrivers:
    def test_violation(self):
        # Circuit.add_stage rejects two static drivers outright, so the
        # reachable multi-driver bug is a tristate fighting a static gate.
        builder = _builder()
        a, b, en = builder.input("a"), builder.input("b"), builder.input("en")
        out = builder.output("out")
        builder.tristate("t0", a, en, out, "P", "N")
        builder.inv("i1", b, out, "P", "N")
        diags = check(builder.done(), "ERC001")
        assert len(diags) == 1
        assert "multiple non-shareable drivers" in diags[0].message
        assert diags[0].location.net == "out"

    def test_shared_tristate_bus_is_legal(self):
        builder = _builder()
        a, b = builder.input("a"), builder.input("b")
        e0, e1 = builder.input("e0"), builder.input("e1")
        out = builder.output("out")
        builder.tristate("t0", a, e0, out, "P", "N")
        builder.tristate("t1", b, e1, out, "P", "N")
        assert not check(builder.done(), "ERC001")


class TestERC002Undriven:
    def test_violation(self):
        builder = _builder()
        ghost = builder.wire("ghost")
        out = builder.output("out")
        builder.inv("i0", ghost, out, "P", "N")
        diags = check(builder.done(), "ERC002")
        assert [d.location.net for d in diags] == ["ghost"]
        assert diags[0].severity is Severity.ERROR

    def test_clean(self):
        builder = _builder()
        a = builder.input("a")
        out = builder.output("out")
        builder.inv("i0", a, out, "P", "N")
        assert not check(builder.done(), "ERC002")


class TestERC003DrivenInput:
    def test_violation(self):
        builder = _builder()
        a, b = builder.input("a"), builder.input("b")
        builder.circuit.mark_output("b")
        builder.inv("i0", a, b, "P", "N")
        diags = check(builder.done(), "ERC003")
        assert len(diags) == 1
        assert "primary input/clock is also driven by i0" in diags[0].message

    def test_clean(self):
        builder = _builder()
        a = builder.input("a")
        builder.inv("i0", a, builder.output("out"), "P", "N")
        assert not check(builder.done(), "ERC003")


class TestERC004Dangling:
    def test_violation(self):
        builder = _builder()
        a = builder.input("a")
        builder.inv("i0", a, builder.wire("nowhere"), "P", "N")
        diags = check(builder.done(), "ERC004")
        assert [d.location.net for d in diags] == ["nowhere"]
        assert diags[0].severity is Severity.WARNING

    def test_primary_output_is_not_dangling(self):
        builder = _builder()
        a = builder.input("a")
        builder.inv("i0", a, builder.output("out"), "P", "N")
        assert not check(builder.done(), "ERC004")


class TestERC005DominoClock:
    def test_clock_pin_on_signal_net(self):
        builder = _builder()
        builder.size("PC"), builder.size("D"), builder.size("E")
        a = builder.input("a")
        fake_clk = builder.input("not_a_clock")  # SIGNAL kind
        builder.domino(
            "d0", [[(a, PinClass.DATA)]], fake_clk, builder.output("out"),
            "PC", "D", "E",
        )
        diags = check(builder.done(), "ERC005")
        assert len(diags) == 1
        assert "non-clock net not_a_clock" in diags[0].message

    def test_clean(self):
        builder = _builder()
        builder.size("PC"), builder.size("D"), builder.size("E")
        a = builder.input("a")
        clk = builder.clock()
        builder.domino(
            "d0", [[(a, PinClass.DATA)]], clk, builder.output("out"),
            "PC", "D", "E",
        )
        assert not check(builder.done(), "ERC005")


class TestERC006UnknownLabel:
    def test_violation(self):
        builder = _builder()
        a = builder.input("a")
        builder.inv("i0", a, builder.output("out"), "P", "UNDECLARED")
        diags = check(builder.done(), "ERC006")
        assert len(diags) == 1
        assert "size label UNDECLARED not in size table" in diags[0].message
        assert diags[0].location.stage == "i0"

    def test_clean(self):
        builder = _builder()
        a = builder.input("a")
        builder.inv("i0", a, builder.output("out"), "P", "N")
        assert not check(builder.done(), "ERC006")


class TestERC007UnusedLabel:
    def test_violation(self):
        builder = _builder()
        builder.size("ORPHAN")
        a = builder.input("a")
        builder.inv("i0", a, builder.output("out"), "P", "N")
        diags = check(builder.done(), "ERC007")
        assert len(diags) == 1
        assert "ORPHAN" in diags[0].message

    def test_ratio_labels_exempt(self):
        builder = _builder()
        builder.size("HALF_P", ratio_of=("P", 0.5))
        a = builder.input("a")
        builder.inv("i0", a, builder.output("out"), "P", "N")
        assert not check(builder.done(), "ERC007")


class TestERC008StrongMutex:
    def test_shared_select_net(self):
        builder = _builder()
        builder.size("PP"), builder.size("SI")
        a, b, s = builder.input("a"), builder.input("b"), builder.input("s")
        out = builder.output("out")
        builder.passgate("p0", a, s, out, "PP", "SI")
        builder.passgate("p1", b, s, out, "PP", "SI")
        diags = check(builder.done(), "ERC008")
        assert len(diags) == 1
        assert "share a select net" in diags[0].message

    def test_missing_select_pin_is_diagnosed_not_crashed(self):
        """Regression: a strong-mutex pass gate with no select pin used to
        raise IndexError inside the checker."""
        builder = _builder()
        builder.size("PP"), builder.size("SI")
        a = builder.input("a")
        out = builder.output("out")
        builder.circuit.add_stage(
            Stage(
                name="p0",
                kind=StageKind.PASSGATE,
                inputs=[Pin("d", a, PinClass.DATA)],
                output=out,
                size_vars={"pass": "PP", "sel_inv": "SI"},
                params={"mutex": "strong"},
            )
        )
        diags = check(builder.done(), "ERC008")
        assert len(diags) == 1
        assert "no select pin" in diags[0].message
        assert diags[0].location.stage == "p0"
        # ... and through the legacy facade as well.
        report = validate_circuit(builder.done())
        assert any("no select pin" in err for err in report.errors)

    def test_clean(self):
        builder = _builder()
        builder.size("PP"), builder.size("SI")
        a, b = builder.input("a"), builder.input("b")
        s0, s1 = builder.input("s0"), builder.input("s1")
        out = builder.output("out")
        builder.passgate("p0", a, s0, out, "PP", "SI")
        builder.passgate("p1", b, s1, out, "PP", "SI")
        assert not check(builder.done(), "ERC008")


class TestERC009Cycle:
    def _looped(self):
        builder = _builder()
        n0, n1 = builder.wire("n0"), builder.wire("n1")
        builder.circuit.mark_output("n1")
        builder.inv("fwd", n0, n1, "P", "N")
        builder.inv("bwd", n1, n0, "P", "N")
        return builder.done()

    def test_cycle_names_stages(self):
        """Satellite: the CircuitError and the diagnostic must name the
        stages on the loop, not just say 'cycle'."""
        circuit = self._looped()
        with pytest.raises(CircuitError, match="combinational loop") as exc:
            circuit.topological_stages()
        message = str(exc.value)
        assert "fwd" in message and "bwd" in message
        assert "->" in message

        diags = check(circuit, "ERC009")
        assert len(diags) == 1
        assert "fwd" in diags[0].message and "bwd" in diags[0].message

    def test_clean(self):
        builder = _builder()
        a = builder.input("a")
        mid = builder.wire("mid")
        builder.inv("i0", a, mid, "P", "N")
        builder.inv("i1", mid, builder.output("out"), "P", "N")
        assert not check(builder.done(), "ERC009")
