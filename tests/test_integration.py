"""End-to-end integration tests across the SMART flow.

These cross-module scenarios mirror how a datapath designer would actually
use the tool, including the Section-6.1 verification step: after SMART sizes
a macro, the *transient simulator* (our SPICE) re-measures the critical
transition and it must land near the spec.
"""

import pytest

from repro import DesignConstraints, MacroSpec, SmartAdvisor
from repro.core.editing import merge_condition_gate, pin_sizes
from repro.core.savings import macro_savings
from repro.netlist import export_circuit, read_spice
from repro.sim import TransientSimulator, constant, step
from repro.sizing.engine import nominal_delay


@pytest.fixture(scope="module")
def advisor():
    return SmartAdvisor()


class TestAdviseSizeExport:
    def test_full_flow_to_spice(self, advisor, tmp_path):
        spec = MacroSpec("mux", 4, output_load=30.0)
        report = advisor.advise(spec, DesignConstraints(delay=400.0))
        best = report.best
        assert best is not None
        circuit, sizing = advisor.size_topology(
            best.topology, spec, DesignConstraints(delay=400.0)
        )
        deck = export_circuit(circuit, sizing.resolved)
        deck_file = tmp_path / "mux4.sp"
        deck_file.write_text(deck)
        parsed = read_spice(deck_file.read_text())
        (name,) = parsed
        assert len(parsed[name]) == circuit.transistor_count()


class TestSpiceVerification:
    def test_sized_mux_meets_spec_in_transient(self, advisor, library):
        """Section 6.1's closing step: re-simulate the SMART solution."""
        spec = MacroSpec("mux", 4, output_load=30.0)
        circuit = advisor.database.generate(
            "mux/strong_mutex_passgate", spec, advisor.tech
        )
        budget = 0.9 * nominal_delay(circuit, library)
        constraints = DesignConstraints(delay=budget)
        _, sizing = advisor.size_topology(
            "mux/strong_mutex_passgate", spec, constraints
        )
        assert sizing.converged

        devices = circuit.expand_transistors(sizing.resolved)
        extra = {
            net.name: net.fixed_cap
            for net in circuit.nets.values()
            if net.fixed_cap > 0
        }
        sim = TransientSimulator(devices, advisor.tech, extra_caps=extra)
        vdd = advisor.tech.vdd
        stimuli = {"in0": step(vdd, at=200.0, rise=constraints.input_slope)}
        for i in range(1, 4):
            stimuli[f"in{i}"] = constant(0.0)
        for i in range(4):
            stimuli[f"s{i}"] = constant(vdd if i == 0 else 0.0)
        result = sim.run(stimuli, duration=200.0 + 6.0 * budget, dt=1.0)
        measured = result.delay("in0", "out", in_rising=True, out_rising=True)
        assert measured is not None
        # The switch-level sim and the calibrated templates are different
        # models; agree within a factor-2 band around the spec.
        assert measured < 2.0 * budget


class TestEditThenSize:
    def test_edit_pin_size_verify(self, advisor, library):
        spec = MacroSpec("mux", 4, output_load=30.0)
        circuit = advisor.database.generate(
            "mux/strong_mutex_passgate", spec, advisor.tech
        )
        merge_condition_gate(circuit, "s3", "nand", ["valid", "sel3"], "PC", "NC")
        pin_sizes(circuit, {"P3": 10.0})
        from repro.sizing import DelaySpec, SmartSizer

        nom = nominal_delay(circuit, library)
        result = SmartSizer(circuit, library).size(DelaySpec(data=nom))
        assert result.converged
        assert result.resolved["P3"] == pytest.approx(10.0)
        assert "PC" in result.widths


class TestCrossTopologyConsistency:
    def test_savings_protocol_entire_mux_family(self, advisor, library):
        """Table-1 shape: every mux topology yields nonnegative savings and
        domino rows also save clock."""
        cases = {
            "mux/strong_mutex_passgate": MacroSpec("mux", 6, output_load=40.0),
            "mux/tristate": MacroSpec("mux", 6, output_load=80.0),
            "mux/unsplit_domino": MacroSpec("mux", 8, output_load=30.0),
        }
        for topology, spec in cases.items():
            objective = "area+clock" if "domino" in topology else "area"
            result = macro_savings(
                advisor.database, topology, spec, library, objective=objective
            )
            assert result.timing_met, topology
            assert result.width_saving > 0.0, topology
            if "domino" in topology:
                assert result.clock_saving > 0.0, topology
