"""Shared fixtures: technology, model library, database, small circuits."""

import pytest

from repro.macros import MacroSpec, default_database
from repro.macros.base import MacroBuilder
from repro.models import ModelLibrary, Technology


@pytest.fixture(scope="session")
def tech():
    return Technology()

@pytest.fixture(scope="session")
def library(tech):
    return ModelLibrary(tech)


@pytest.fixture(scope="session")
def database():
    return default_database()


@pytest.fixture
def inverter_chain(tech):
    """A 3-stage inverter chain: in -> n1 -> n2 -> out (20 fF load)."""
    builder = MacroBuilder("invchain", tech)
    a = builder.input("in")
    n1 = builder.wire("n1")
    n2 = builder.wire("n2")
    out = builder.output("out", load=20.0)
    builder.size("P0"), builder.size("N0")
    builder.size("P1"), builder.size("N1")
    builder.size("P2"), builder.size("N2")
    builder.inv("i0", a, n1, "P0", "N0")
    builder.inv("i1", n1, n2, "P1", "N1")
    builder.inv("i2", n2, out, "P2", "N2")
    return builder.done()


@pytest.fixture
def small_mux(database, tech):
    """A 4:1 strongly-mutexed pass-gate mux with 30 fF output load."""
    return database.generate(
        "mux/strong_mutex_passgate", MacroSpec("mux", 4, output_load=30.0), tech
    )


@pytest.fixture
def domino_mux(database, tech):
    """An 8:1 un-split domino mux."""
    return database.generate(
        "mux/unsplit_domino", MacroSpec("mux", 8, output_load=30.0), tech
    )
