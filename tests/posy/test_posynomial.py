"""Unit tests for Posynomial arithmetic, term merging, and evaluation."""

import pytest

from repro.posy import Posynomial, as_posynomial, posy_sum, var


class TestConstruction:
    def test_from_terms_merges_like_terms(self):
        p = Posynomial.from_terms([var("x"), var("x"), 2.0 * var("y")])
        assert len(p) == 2
        assert p.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx(4.0)

    def test_zero(self):
        z = Posynomial.zero()
        assert len(z) == 0
        assert z.evaluate({}) == 0.0

    def test_scalars_in_terms(self):
        p = Posynomial.from_terms([1.0, 2.0, var("x")])
        assert p.constant_part() == pytest.approx(3.0)

    def test_as_posynomial_coercions(self):
        assert len(as_posynomial(var("x"))) == 1
        assert len(as_posynomial(5.0)) == 1
        assert len(as_posynomial(0)) == 0
        with pytest.raises(TypeError):
            as_posynomial("nope")


class TestArithmetic:
    def test_addition(self):
        p = var("x") + var("y") + 1.0
        assert len(p) == 3
        assert p.evaluate({"x": 2.0, "y": 3.0}) == pytest.approx(6.0)

    def test_addition_merges(self):
        p = (var("x") + 1.0) + (var("x") + 2.0)
        assert len(p) == 2
        assert p.constant_part() == pytest.approx(3.0)

    def test_multiplication_distributes(self):
        p = (var("x") + 1.0) * (var("y") + 2.0)
        env = {"x": 3.0, "y": 5.0}
        assert p.evaluate(env) == pytest.approx((3 + 1) * (5 + 2))

    def test_scalar_multiplication(self):
        p = 2.0 * (var("x") + var("y"))
        assert p.evaluate({"x": 1.0, "y": 1.0}) == pytest.approx(4.0)

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            (-1.0) * (var("x") + 1.0)

    def test_division_by_monomial(self):
        p = (var("x") ** 2 + var("x")) / var("x")
        assert p.evaluate({"x": 4.0}) == pytest.approx(5.0)

    def test_power(self):
        p = (var("x") + 1.0) ** 2
        assert p.evaluate({"x": 2.0}) == pytest.approx(9.0)
        assert len(p) == 3

    def test_power_zero_is_one(self):
        p = (var("x") + 1.0) ** 0
        assert p.is_constant()
        assert p.evaluate({}) == pytest.approx(1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            (var("x") + 1.0) ** -1

    def test_subtraction_of_like_terms(self):
        p = (2.0 * var("x") + 1.0) - var("x")
        assert p.evaluate({"x": 1.0}) == pytest.approx(2.0)

    def test_subtraction_to_exact_cancellation(self):
        p = (var("x") + 1.0) - var("x")
        assert p.constant_part() == pytest.approx(1.0)
        assert len(p) == 1

    def test_subtraction_going_negative_rejected(self):
        with pytest.raises(ValueError):
            as_posynomial(var("x")) - (2.0 * var("x"))


class TestIntrospection:
    def test_variables(self):
        p = var("a") * var("b") + var("c")
        assert p.variables() == frozenset({"a", "b", "c"})

    def test_is_monomial_and_as_monomial(self):
        p = as_posynomial(2.0 * var("x"))
        assert p.is_monomial()
        assert p.as_monomial() == 2.0 * var("x")
        with pytest.raises(ValueError):
            (var("x") + 1.0).as_monomial()

    def test_gradient(self):
        p = var("x") ** 2 + 3.0 * var("x") * var("y")
        grad = p.grad({"x": 2.0, "y": 1.0})
        assert grad["x"] == pytest.approx(2 * 2 + 3 * 1)
        assert grad["y"] == pytest.approx(3 * 2)

    def test_posy_sum(self):
        p = posy_sum([var("x"), 1.0, var("x")])
        assert p.evaluate({"x": 2.0}) == pytest.approx(5.0)
        assert len(posy_sum([])) == 0

    def test_equality(self):
        assert var("x") + var("y") == var("y") + var("x")
        assert (var("x") + 0.0) == as_posynomial(var("x"))
        assert Posynomial.zero() == 0

    def test_terms_sorted_deterministically(self):
        p = var("b") + var("a")
        names = [t.variables() for t in p.terms]
        assert names == sorted(names, key=lambda s: sorted(s))
