"""Property-based tests: posynomial algebra laws and GP-relevant invariants."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.posy import Monomial, Posynomial, as_posynomial

VARS = ("x", "y", "z")

coefficients = st.floats(min_value=1e-3, max_value=1e3)
exponents = st.floats(min_value=-3.0, max_value=3.0).map(lambda e: round(e, 3))


@st.composite
def monomials(draw):
    coeff = draw(coefficients)
    n_vars = draw(st.integers(min_value=0, max_value=3))
    names = draw(
        st.lists(st.sampled_from(VARS), min_size=n_vars, max_size=n_vars, unique=True)
    )
    return Monomial(coeff, {name: draw(exponents) for name in names})


@st.composite
def posynomials(draw):
    terms = draw(st.lists(monomials(), min_size=1, max_size=5))
    return Posynomial.from_terms(terms)


@st.composite
def environments(draw):
    return {
        name: draw(st.floats(min_value=1e-2, max_value=1e2)) for name in VARS
    }


@given(monomials(), monomials(), environments())
def test_monomial_product_evaluates_pointwise(a, b, env):
    assert (a * b).evaluate(env) == pytest.approx(
        a.evaluate(env) * b.evaluate(env), rel=1e-9
    )


@given(monomials(), environments())
def test_monomial_inverse(a, env):
    inv = a ** -1
    assert (a * inv).evaluate(env) == pytest.approx(1.0, rel=1e-9)


@given(posynomials(), posynomials(), environments())
def test_posynomial_sum_evaluates_pointwise(p, q, env):
    assert (p + q).evaluate(env) == pytest.approx(
        p.evaluate(env) + q.evaluate(env), rel=1e-9
    )


@given(posynomials(), posynomials(), environments())
def test_posynomial_product_evaluates_pointwise(p, q, env):
    assert (p * q).evaluate(env) == pytest.approx(
        p.evaluate(env) * q.evaluate(env), rel=1e-6
    )


@given(posynomials(), environments())
def test_posynomials_are_positive(p, env):
    """A posynomial is positive everywhere on the positive orthant."""
    assert p.evaluate(env) > 0.0


@given(posynomials(), environments(), environments())
def test_log_log_convexity_along_segment(p, env_a, env_b):
    """f(x) posynomial => log f(e^y) convex in y: midpoint rule."""
    mid = {
        name: math.exp((math.log(env_a[name]) + math.log(env_b[name])) / 2.0)
        for name in VARS
    }
    lhs = math.log(p.evaluate(mid))
    rhs = 0.5 * (math.log(p.evaluate(env_a)) + math.log(p.evaluate(env_b)))
    assert lhs <= rhs + 1e-9


@given(posynomials(), environments())
def test_gradient_is_sum_of_term_gradients(p, env):
    """Posynomial.grad must agree with summing each Monomial's gradient
    (independent implementations of the same derivative)."""
    grad = p.grad(env)
    expected = {}
    for term in p.terms:
        for name, g in term.grad(env).items():
            expected[name] = expected.get(name, 0.0) + g
    for name in p.variables():
        assert grad.get(name, 0.0) == pytest.approx(
            expected.get(name, 0.0), rel=1e-9, abs=1e-12
        )


@given(monomials(), environments())
def test_monomial_gradient_matches_finite_difference(m, env):
    grad = m.grad(env)
    for name in m.variables():
        h = env[name] * 1e-7
        up = dict(env)
        up[name] = env[name] + h
        down = dict(env)
        down[name] = env[name] - h
        numeric = (m.evaluate(up) - m.evaluate(down)) / (2 * h)
        assert grad[name] == pytest.approx(numeric, rel=1e-4, abs=1e-9)


@given(posynomials())
def test_addition_commutes(p):
    q = Posynomial.from_terms([Monomial(2.0, {"x": 1.0})])
    assert p + q == q + p


@given(posynomials(), environments())
def test_scalar_scale_linear(p, env):
    assert (3.0 * p).evaluate(env) == pytest.approx(3.0 * p.evaluate(env), rel=1e-9)


@given(monomials())
def test_monomial_roundtrip_through_posynomial(m):
    p = as_posynomial(m)
    assert p.is_monomial()
    back = p.as_monomial()
    assert back == m
