"""Unit tests for Monomial arithmetic and evaluation."""


import pytest

from repro.posy import Monomial, const, var


class TestConstruction:
    def test_variable(self):
        x = Monomial.variable("x")
        assert x.coefficient == 1.0
        assert x.exponents == {"x": 1.0}

    def test_constant(self):
        c = Monomial.constant(3.5)
        assert c.is_constant()
        assert c.evaluate({}) == 3.5

    def test_zero_exponents_dropped(self):
        m = Monomial(2.0, {"x": 0.0, "y": 1.0})
        assert m.variables() == frozenset({"y"})

    def test_nonpositive_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Monomial(0.0, {"x": 1.0})
        with pytest.raises(ValueError):
            Monomial(-1.0, {"x": 1.0})

    def test_nonfinite_coefficient_rejected(self):
        with pytest.raises(ValueError):
            Monomial(float("inf"), {})

    def test_helpers(self):
        assert var("w") == Monomial.variable("w")
        assert const(2.0) == Monomial.constant(2.0)


class TestArithmetic:
    def test_multiply_merges_exponents(self):
        m = var("x") * var("y") * var("x")
        assert m.degree("x") == 2.0
        assert m.degree("y") == 1.0

    def test_multiply_by_scalar(self):
        m = 3.0 * var("x")
        assert m.coefficient == 3.0

    def test_division(self):
        m = var("x") / var("y")
        assert m.degree("y") == -1.0
        assert m.evaluate({"x": 6.0, "y": 2.0}) == pytest.approx(3.0)

    def test_scalar_division(self):
        m = 1.0 / var("x")
        assert m.degree("x") == -1.0

    def test_power(self):
        m = (2.0 * var("x")) ** 2
        assert m.coefficient == 4.0
        assert m.degree("x") == 2.0

    def test_fractional_power(self):
        m = (4.0 * var("x")) ** 0.5
        assert m.coefficient == pytest.approx(2.0)
        assert m.degree("x") == pytest.approx(0.5)

    def test_inverse_cancels(self):
        m = var("x") * var("x") ** -1
        assert m.is_constant()
        assert m.coefficient == pytest.approx(1.0)

    def test_addition_promotes_to_posynomial(self):
        p = var("x") + var("y")
        assert len(p) == 2


class TestEvaluation:
    def test_evaluate(self):
        m = 2.0 * var("x") * var("y") ** 2
        assert m.evaluate({"x": 3.0, "y": 2.0}) == pytest.approx(24.0)

    def test_evaluate_requires_positive(self):
        with pytest.raises(ValueError):
            var("x").evaluate({"x": -1.0})
        with pytest.raises(ValueError):
            var("x").evaluate({"x": 0.0})

    def test_gradient(self):
        m = 2.0 * var("x") ** 2
        grad = m.grad({"x": 3.0})
        assert grad["x"] == pytest.approx(12.0)

    def test_partial(self):
        m = 3.0 * var("x") ** 2
        d = m.partial("x")
        assert d.coefficient == pytest.approx(6.0)
        assert d.degree("x") == pytest.approx(1.0)

    def test_partial_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            (1.0 / var("x")).partial("x")


class TestEquality:
    def test_equal_monomials(self):
        assert 2.0 * var("x") == var("x") * 2.0

    def test_constant_equals_scalar(self):
        assert Monomial.constant(5.0) == 5.0

    def test_hash_consistency(self):
        a = 2.0 * var("x") * var("y")
        b = var("y") * var("x") * 2.0
        assert hash(a) == hash(b)

    def test_repr_readable(self):
        assert "x" in repr(var("x"))
        assert repr(Monomial.constant(1.0)) == "1"
