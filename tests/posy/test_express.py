"""Tests for the posynomial expression helpers."""

import pytest

from repro.posy import (
    Monomial,
    Posynomial,
    as_monomial,
    as_posynomial,
    is_posynomial_in,
    posy_max_bound,
    posy_sum,
    scale_env,
    var,
)


class TestCoercion:
    def test_as_monomial_from_scalar(self):
        assert as_monomial(3.0) == Monomial.constant(3.0)

    def test_as_monomial_from_singleton_posynomial(self):
        posy = as_posynomial(2.0 * var("x"))
        assert as_monomial(posy) == 2.0 * var("x")

    def test_as_monomial_multi_term_rejected(self):
        with pytest.raises(ValueError):
            as_monomial(var("x") + var("y"))

    def test_as_monomial_bad_type(self):
        with pytest.raises(TypeError):
            as_monomial([1, 2])


class TestHelpers:
    def test_posy_max_bound_is_upper_bound(self):
        exprs = [var("x"), 2.0 * var("x"), as_posynomial(5.0)]
        bound = posy_max_bound(exprs)
        env = {"x": 3.0}
        assert bound.evaluate(env) >= max(e.evaluate(env) if hasattr(e, "evaluate")
                                          else e for e in exprs[:2])

    def test_scale_env(self):
        assert scale_env({"a": 2.0, "b": 4.0}, 0.5) == {"a": 1.0, "b": 2.0}

    def test_scale_env_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scale_env({"a": 1.0}, 0.0)

    def test_is_posynomial_in_subset(self):
        assert is_posynomial_in(var("x") + var("y"), {"x", "y", "z"})
        assert not is_posynomial_in(var("w"), {"x", "y"})

    def test_is_posynomial_in_scalar(self):
        assert is_posynomial_in(5.0, set())

    def test_is_posynomial_in_rejects_junk(self):
        assert not is_posynomial_in("garbage", {"x"})

    def test_posy_sum_mixed(self):
        total = posy_sum([var("x"), 1, Posynomial.zero(), 2.5])
        assert total.evaluate({"x": 2.0}) == pytest.approx(5.5)
