"""Engine + cache integration: exact hits, warm starts, verify fallback."""

import pytest

from repro.cache import SizingCache
from repro.sizing import DelaySpec, SmartSizer
from repro.sizing.engine import nominal_delay


@pytest.fixture
def spec(small_mux, library):
    return DelaySpec(data=0.9 * nominal_delay(small_mux, library))


class TestExactHit:
    def test_second_solve_skips_gp(self, small_mux, library, spec):
        cache = SizingCache()
        first = SmartSizer(small_mux, library, cache=cache).size(spec)
        assert first.converged and first.cache_hit == ""
        assert cache.stats.misses == 1 and cache.stats.stores == 1

        second = SmartSizer(small_mux, library, cache=cache).size(spec)
        assert second.cache_hit == "exact"
        assert second.iterations == 0
        assert second.converged
        assert cache.stats.exact_hits == 1
        for name, width in first.widths.items():
            assert second.widths[name] == pytest.approx(width, abs=1e-9)
        assert second.area == pytest.approx(first.area, abs=1e-9)

    def test_hit_still_meets_spec_per_sta(self, small_mux, library, spec):
        cache = SizingCache()
        SmartSizer(small_mux, library, cache=cache).size(spec)
        hit = SmartSizer(small_mux, library, cache=cache).size(spec)
        assert hit.worst_violation <= 2.0

    def test_wall_saved_accounted(self, small_mux, library, spec, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        SmartSizer(small_mux, library, cache=SizingCache(path)).size(spec)
        cache = SizingCache(path)
        SmartSizer(small_mux, library, cache=cache).size(spec)
        assert cache.stats.wall_saved_s >= 0.0


class TestWarmStart:
    def test_near_spec_warm_starts(self, small_mux, library, spec):
        cache = SizingCache()
        SmartSizer(small_mux, library, cache=cache).size(spec)
        near = DelaySpec(data=spec.data * 1.05)
        result = SmartSizer(small_mux, library, cache=cache).size(near)
        assert result.cache_hit == "warm"
        assert result.converged
        assert cache.stats.warm_hits == 1

    def test_caller_initial_beats_warm_start(self, small_mux, library, spec):
        cache = SizingCache()
        baseline = SmartSizer(small_mux, library, cache=cache).size(spec)
        near = DelaySpec(data=spec.data * 1.05)
        result = SmartSizer(small_mux, library, cache=cache).size(
            near, initial=baseline.widths
        )
        assert result.cache_hit == ""
        assert cache.stats.warm_hits == 0


class TestVerifyFallback:
    def test_poisoned_entry_is_resolved_fresh(self, small_mux, library, spec):
        """A cache hit whose env fails the STA re-check must not be trusted:
        the engine re-solves and the poisoned entry is replaced."""
        cache = SizingCache()
        sizer = SmartSizer(small_mux, library, cache=cache)
        good = sizer.size(spec)
        key = sizer.cache_key(spec)
        poisoned = dict(cache.get(key.key))
        # minimum-everywhere sizes cannot meet a sub-nominal spec
        poisoned["env"] = {
            name: small_mux.size_table[name].lower
            for name in good.widths
        }
        cache.put(poisoned)

        result = SmartSizer(small_mux, library, cache=cache).size(spec)
        assert result.cache_hit != "exact"
        assert result.converged
        assert cache.stats.verify_failures == 1
        for name, width in good.widths.items():
            assert result.widths[name] == pytest.approx(width, abs=1e-6)

    def test_malformed_env_rejected(self, small_mux, library, spec):
        cache = SizingCache()
        sizer = SmartSizer(small_mux, library, cache=cache)
        sizer.size(spec)
        key = sizer.cache_key(spec)
        broken = dict(cache.get(key.key))
        broken["env"] = {"P1": "not-a-number"}
        cache.put(broken)
        result = SmartSizer(small_mux, library, cache=cache).size(spec)
        assert result.converged
        assert cache.stats.verify_failures == 1


class TestKeyScoping:
    def test_objective_change_misses(self, small_mux, library, spec):
        cache = SizingCache()
        SmartSizer(small_mux, library, objective="area", cache=cache).size(spec)
        result = SmartSizer(
            small_mux, library, objective="power", cache=cache
        ).size(spec)
        assert result.cache_hit != "exact"
        assert cache.stats.exact_hits == 0
