"""Fingerprint tests: stability, sensitivity, and name-blindness."""

from repro.cache import (
    CacheKey,
    circuit_fingerprint,
    context_fingerprint,
    sizing_cache_key,
    spec_fingerprint,
)
from repro.macros import MacroSpec
from repro.models import GENERIC_130, ModelLibrary
from repro.sizing import DelaySpec


def _mux(database, tech, width=4):
    return database.generate(
        "mux/strong_mutex_passgate", MacroSpec("mux", width, output_load=30.0),
        tech,
    )


class TestCircuitFingerprint:
    def test_deterministic_across_regeneration(self, database, tech):
        a = circuit_fingerprint(_mux(database, tech))
        b = circuit_fingerprint(_mux(database, tech))
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_name_blind(self, database, tech):
        """Two instances of the same macro differing only by instance name
        must share a fingerprint — that is what makes cross-instance cache
        reuse possible."""
        a = _mux(database, tech)
        b = _mux(database, tech)
        b.name = "renamed_instance"
        assert circuit_fingerprint(a) == circuit_fingerprint(b)

    def test_width_changes_fingerprint(self, database, tech):
        assert circuit_fingerprint(_mux(database, tech, 4)) != (
            circuit_fingerprint(_mux(database, tech, 8))
        )

    def test_pinning_changes_fingerprint(self, database, tech):
        a = _mux(database, tech)
        base = circuit_fingerprint(a)
        label = next(iter(a.size_table.free_names()))
        a.size_table.pin(label, 5.0)
        assert circuit_fingerprint(a) != base

    def test_bound_change_changes_fingerprint(self, database, tech):
        a = _mux(database, tech)
        base = circuit_fingerprint(a)
        var = a.size_table[next(iter(a.size_table.free_names()))]
        var.upper = var.upper * 0.5
        assert circuit_fingerprint(a) != base


class TestContextAndSpecFingerprints:
    def test_context_sensitive_to_objective_and_solver(self, library):
        base = context_fingerprint(library)
        assert context_fingerprint(library, objective="power") != base
        assert context_fingerprint(library, gp_method="barrier") != base
        assert context_fingerprint(library, otb_borrow=10.0) != base
        assert context_fingerprint(library) == base

    def test_context_sensitive_to_technology(self, library):
        other = ModelLibrary(GENERIC_130)
        assert context_fingerprint(other) != context_fingerprint(library)

    def test_spec_fingerprint_covers_tolerance(self):
        spec = DelaySpec(data=150.0)
        assert spec_fingerprint(spec, 2.0) != spec_fingerprint(spec, 1.0)
        assert spec_fingerprint(spec, 2.0) == spec_fingerprint(
            DelaySpec(data=150.0), 2.0
        )
        assert spec_fingerprint(DelaySpec(data=151.0), 2.0) != (
            spec_fingerprint(spec, 2.0)
        )


class TestCacheKey:
    def test_key_composition(self, database, tech, library):
        circuit = _mux(database, tech)
        spec = DelaySpec(data=300.0)
        key = sizing_cache_key(circuit, library, spec)
        assert isinstance(key, CacheKey)
        assert key.key == CacheKey(
            circuit_fp=key.circuit_fp,
            context_fp=key.context_fp,
            spec_fp=key.spec_fp,
        ).key
        # any component change moves the composed key
        other_spec = sizing_cache_key(circuit, library, DelaySpec(data=310.0))
        assert other_spec.key != key.key
        assert other_spec.circuit_fp == key.circuit_fp
        assert other_spec.context_fp == key.context_fp

    def test_matches_engine_cache_key(self, database, tech, library):
        from repro.sizing import SmartSizer

        circuit = _mux(database, tech)
        spec = DelaySpec(data=300.0)
        sizer = SmartSizer(circuit, library, pre_screen=False)
        assert sizer.cache_key(spec).key == sizing_cache_key(
            circuit, library, spec
        ).key
        assert sizer.cache_key(spec, tolerance=1.0).key != (
            sizer.cache_key(spec).key
        )
