"""SizingCache store tests: persistence, lookups, tolerance to bad lines."""

import json

import pytest

from repro.cache import CacheKey, SizingCache, make_entry


def _entry(spec_data=300.0, circuit_fp="c1", context_fp="x1", env=None):
    key = CacheKey(
        circuit_fp=circuit_fp,
        context_fp=context_fp,
        spec_fp=f"s{spec_data}",
    )
    return make_entry(
        key,
        circuit_name="mux4",
        objective="area",
        spec_data=spec_data,
        tolerance=2.0,
        env=env or {"P1": 2.0, "N1": 1.0},
        iterations=3,
        area=20.0,
        runtime_s=0.5,
        created_unix=0.0,
    )


class TestPutGet:
    def test_roundtrip_in_memory(self):
        cache = SizingCache()
        entry = _entry()
        cache.put(entry)
        assert cache.get(entry["key"]) == entry
        assert entry["key"] in cache
        assert len(cache) == 1

    def test_put_requires_fields(self):
        with pytest.raises(ValueError):
            SizingCache().put({"key": "k"})

    def test_idempotent_put(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = SizingCache(str(path))
        cache.put(_entry())
        cache.put(_entry())
        assert len(path.read_text().strip().splitlines()) == 1


class TestPersistence:
    def test_reload_from_file(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        writer = SizingCache(str(path))
        entry = _entry()
        writer.put(entry)

        reader = SizingCache(str(path))
        assert reader.get(entry["key"]) == entry

    def test_corrupt_and_foreign_lines_skipped(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        entry = _entry()
        with open(path, "w") as fh:
            fh.write("{not json\n")
            fh.write(json.dumps({"something": "else"}) + "\n")
            fh.write(json.dumps(entry) + "\n")
        cache = SizingCache(str(path))
        assert cache.skipped_lines == 2
        assert cache.get(entry["key"]) == entry

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        old = _entry()
        new = dict(_entry(), area=99.0)
        with open(path, "w") as fh:
            fh.write(json.dumps(old) + "\n")
            fh.write(json.dumps(new) + "\n")
        assert SizingCache(str(path)).get(old["key"])["area"] == 99.0

    def test_flush_persists_deferred_entries(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        worker = SizingCache(str(path), autosync=False)
        worker.put(_entry())
        assert not path.exists()
        worker.flush()
        assert SizingCache(str(path)).get(_entry()["key"]) is not None


class TestNearest:
    def test_picks_log_nearest_spec(self):
        cache = SizingCache()
        for spec in (100.0, 200.0, 400.0):
            cache.put(_entry(spec_data=spec))
        assert cache.nearest("c1", "x1", 190.0)["spec_data"] == 200.0
        assert cache.nearest("c1", "x1", 90.0)["spec_data"] == 100.0

    def test_scoped_to_circuit_and_context(self):
        cache = SizingCache()
        cache.put(_entry(circuit_fp="c1"))
        assert cache.nearest("c2", "x1", 300.0) is None
        assert cache.nearest("c1", "x2", 300.0) is None
        assert cache.nearest("c1", "x1", 300.0) is not None

    def test_rejects_nonpositive_target(self):
        cache = SizingCache()
        cache.put(_entry())
        assert cache.nearest("c1", "x1", 0.0) is None


class TestWorkerProtocol:
    def test_seed_does_not_mark_new(self):
        worker = SizingCache(autosync=False)
        worker.seed([_entry()])
        assert len(worker) == 1
        assert worker.new_entries() == []

    def test_drain_new_ships_only_fresh_entries(self):
        worker = SizingCache(autosync=False)
        worker.seed([_entry(spec_data=100.0)])
        fresh = _entry(spec_data=200.0)
        worker.put(fresh)
        drained = worker.drain_new()
        assert drained == [fresh]
        assert worker.drain_new() == []

    def test_merge_entries_counts_new_only(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        parent = SizingCache(str(path))
        a, b = _entry(spec_data=100.0), _entry(spec_data=200.0)
        parent.put(a)
        assert parent.merge_entries([a, b]) == 1
        assert len(SizingCache(str(path))) == 2

    def test_stats_absorb(self):
        parent = SizingCache()
        parent.stats.exact_hits = 1
        parent.stats.absorb(
            {"exact_hits": 2, "misses": 3, "wall_saved_s": 0.5}
        )
        assert parent.stats.exact_hits == 3
        assert parent.stats.misses == 3
        assert parent.stats.lookups == 6
        assert parent.stats.hit_rate == pytest.approx(0.5)


class TestJsonlArtifactStore:
    def _store(self, path=None):
        from repro.cache import JsonlArtifactStore

        return JsonlArtifactStore(path, fmt="test-artifact/1")

    def test_put_get_in_memory(self):
        store = self._store()
        store.put("k1", {"value": 42})
        assert store.get("k1")["value"] == 42
        assert "k1" in store
        assert store.get("missing") is None

    def test_persistence_and_idempotent_put(self, tmp_path):
        path = str(tmp_path / "art.jsonl")
        store = self._store(path)
        store.put("k1", {"value": 1})
        store.put("k1", {"value": 1})
        reloaded = self._store(path)
        assert len(reloaded) == 1
        assert reloaded.get("k1")["value"] == 1

    def test_last_write_wins_on_rewrite(self, tmp_path):
        path = str(tmp_path / "art.jsonl")
        store = self._store(path)
        store.put("k1", {"value": 1})
        store.put("k1", {"value": 2})
        assert self._store(path).get("k1")["value"] == 2

    def test_foreign_format_and_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "art.jsonl"
        store = self._store(str(path))
        store.put("k1", {"value": 1})
        with open(path, "a") as fh:
            fh.write('{"key": "k2", "format": "other/9"}\n')
            fh.write("junk\n")
        reloaded = self._store(str(path))
        assert len(reloaded) == 1
        assert reloaded.skipped_lines == 2
